//! Routing-loop debugging (§4.5, Figure 9).
//!
//! A looping packet accumulates a VLAN tag every two switches; at three
//! tags the next switch's rule miss punts it to the controller. The
//! controller either finds a repeated link ID among the carried tags
//! (loop!) or stores them, strips the header, and re-injects the packet —
//! a subsequent punt with overlapping link IDs proves the loop. Loops of
//! *any* size are detected this way, in controller-punt time rather than
//! TTL time. The trap logic itself lives in
//! `pathdump_core::world::PathDumpWorld::on_punt`; this module builds loop
//! scenarios and reports detection latency.

use crate::scenarios::Testbed;
use pathdump_core::LoopDetection;
use pathdump_simnet::{Packet, Quirk};
use pathdump_topology::{FlowId, Nanos, SwitchId};

/// Installs per-flow forwarding overrides creating a loop through the
/// given switch cycle (`cycle[0] -> cycle[1] -> ... -> cycle[0]`), entered
/// from `entry`.
///
/// Cycle switches must be pairwise distinct (one override per switch).
///
/// # Panics
///
/// Panics if consecutive cycle switches are not adjacent or a switch
/// repeats.
pub fn install_loop(tb: &mut Testbed, flow: FlowId, entry: SwitchId, cycle: &[SwitchId]) {
    assert!(cycle.len() >= 2, "a loop needs at least two switches");
    let distinct: std::collections::HashSet<_> = cycle.iter().collect();
    assert_eq!(
        distinct.len(),
        cycle.len(),
        "cycle switches must be distinct"
    );
    // Entry switch forwards into the cycle.
    let port = tb.sim.link_port(entry, cycle[0]);
    tb.sim
        .install_quirk(entry, Quirk::ForwardFlowTo { flow, port });
    for i in 0..cycle.len() {
        let from = cycle[i];
        let to = cycle[(i + 1) % cycle.len()];
        let port = tb.sim.link_port(from, to);
        tb.sim
            .install_quirk(from, Quirk::ForwardFlowTo { flow, port });
    }
}

/// Result of one loop experiment.
#[derive(Clone, Debug)]
pub struct LoopExperiment {
    /// The injected flow.
    pub flow: FlowId,
    /// Detection, if the controller caught it.
    pub detection: Option<LoopDetection>,
    /// Total punts observed.
    pub punts: usize,
}

/// Injects one packet of `flow` and runs until `deadline`, reporting the
/// detection outcome.
pub fn run_loop_experiment(tb: &mut Testbed, flow: FlowId, deadline: Nanos) -> LoopExperiment {
    let src = tb.host_by_ip(flow.src_ip).expect("flow source must exist");
    let pkt = Packet::data(0, flow, 0, 1000, tb.sim.now());
    tb.sim.send_from(src, pkt);
    tb.sim.run_until(deadline);
    LoopExperiment {
        flow,
        detection: tb
            .sim
            .world
            .loop_detections
            .iter()
            .find(|d| d.flow == flow)
            .cloned(),
        punts: tb.sim.world.punts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::MILLIS;

    /// Figure 9's 4-switch loop: agg -> core -> agg -> core -> agg.
    #[test]
    fn four_switch_loop_detected_quickly() {
        let mut tb = Testbed::default_k4();
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 8800);
        let cycle = [
            tb.ft.agg(0, 0),
            tb.ft.core(0),
            tb.ft.agg(1, 0),
            tb.ft.core(1),
        ];
        let entry = tb.ft.tor(0, 0);
        install_loop(&mut tb, flow, entry, &cycle);
        let out = run_loop_experiment(&mut tb, flow, Nanos::from_secs(3));
        let det = out.detection.expect("loop must be detected");
        assert!(det.visits <= 2, "small loop detected within two visits");
        // Detection latency is controller-trap bound: tens of ms, far
        // below any TTL-based signal.
        let punt = tb.sim.config().punt_latency;
        assert!(det.at >= punt);
        assert!(det.at < Nanos(10 * punt.0 + 500 * MILLIS));
    }

    /// An 8-switch loop crossing two pods and both core groups: the same
    /// procedure detects it, possibly with one extra controller visit
    /// ("detecting even larger loops involves exactly the same procedure").
    #[test]
    fn eight_switch_loop_detected() {
        let mut tb = Testbed::default_k4();
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 8900);
        let cycle = [
            tb.ft.agg(0, 0),
            tb.ft.core(0),
            tb.ft.agg(1, 0),
            tb.ft.tor(1, 0),
            tb.ft.agg(1, 1),
            tb.ft.core(2),
            tb.ft.agg(0, 1),
            tb.ft.tor(0, 1),
        ];
        let entry = tb.ft.tor(0, 0);
        install_loop(&mut tb, flow, entry, &cycle);
        let out = run_loop_experiment(&mut tb, flow, Nanos::from_secs(3));
        let det = out.detection.expect("larger loop must also be detected");
        assert!(det.visits <= 3);
        assert!(out.punts >= det.visits as usize);
    }

    #[test]
    fn no_loop_no_detection() {
        let mut tb = Testbed::default_k4();
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(2, 1, 1));
        tb.add_flow(src, dst, 8950, 50_000, Nanos::ZERO);
        tb.sim.run_until(Nanos::from_secs(5));
        assert!(tb.sim.world.loop_detections.is_empty());
        assert!(tb.sim.world.punts.is_empty());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_cycle_switch_rejected() {
        let mut tb = Testbed::default_k4();
        let flow = tb.flow(tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0), 1);
        let c0 = tb.ft.core(0);
        let cycle = [tb.ft.agg(0, 0), c0, tb.ft.agg(1, 0), c0];
        let entry = tb.ft.tor(0, 0);
        install_loop(&mut tb, flow, entry, &cycle);
    }
}
