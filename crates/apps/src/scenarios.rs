//! Shared experiment scaffolding: a fat-tree testbed with PathDump agents
//! on every host, CherryPick tagging in the fabric, and web background
//! traffic — the common substrate of every §4 experiment.

use pathdump_cherrypick::{FatTreeCherryPick, FatTreeReconstructor};
use pathdump_core::{Fabric, PathDumpWorld, WorldConfig};
use pathdump_simnet::{SimConfig, Simulator};
use pathdump_topology::{FatTree, FatTreeParams, FlowId, HostId, Nanos, UpDownRouting};
use pathdump_transport::{install_flows, FlowSpec, TcpConfig, WebWorkload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A ready-to-run fat-tree testbed.
pub struct Testbed {
    /// The topology.
    pub ft: FatTree,
    /// The simulator with the PathDump world installed.
    pub sim: Simulator<PathDumpWorld>,
}

impl Testbed {
    /// Builds a `k`-ary fat-tree testbed with the given configs.
    pub fn fattree(k: u16, sim_cfg: SimConfig, world_cfg: WorldConfig) -> Self {
        let ft = FatTree::build(FatTreeParams { k });
        let world = PathDumpWorld::new(
            Fabric::FatTree(FatTreeReconstructor::new(ft.clone())),
            TcpConfig::default(),
            world_cfg,
        );
        let mut sim = Simulator::new(
            &ft,
            sim_cfg,
            Box::new(FatTreeCherryPick::new(ft.clone())),
            world,
        );
        PathDumpWorld::start(&mut sim);
        Testbed { ft, sim }
    }

    /// Default testbed used by tests: k=4, test sim config.
    pub fn default_k4() -> Self {
        Testbed::fattree(4, SimConfig::for_tests(), WorldConfig::default())
    }

    /// The flow ID between two hosts.
    pub fn flow(&self, src: HostId, dst: HostId, sport: u16) -> FlowId {
        let t = self.ft.topology();
        FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
    }

    /// Host lookup by IP address.
    pub fn host_by_ip(&self, ip: pathdump_topology::Ip) -> Option<HostId> {
        self.ft.topology().host_by_ip(ip)
    }

    /// IP address of a host.
    pub fn ip_of(&self, host: HostId) -> pathdump_topology::Ip {
        self.ft.topology().host(host).ip
    }

    /// Adjacency test on the underlying topology.
    pub fn adjacent(&self, a: pathdump_topology::SwitchId, b: pathdump_topology::SwitchId) -> bool {
        self.ft.topology().adjacent(a, b)
    }

    /// Registers and schedules a single TCP flow.
    pub fn add_flow(
        &mut self,
        src: HostId,
        dst: HostId,
        sport: u16,
        size: u64,
        start: Nanos,
    ) -> FlowSpec {
        let spec = FlowSpec {
            flow: self.flow(src, dst, sport),
            src,
            dst,
            size,
            start,
        };
        install_flows(&mut self.sim, &[spec], |w| &mut w.tcp);
        spec
    }

    /// Adds Poisson web background traffic at fractional `load` among all
    /// hosts for `duration`; returns the specs.
    pub fn add_web_traffic(&mut self, load: f64, duration: Nanos, seed: u64) -> Vec<FlowSpec> {
        let hosts: Vec<HostId> = (0..self.ft.topology().num_hosts() as u32)
            .map(HostId)
            .collect();
        let wl = WebWorkload {
            load,
            link_rate_bps: self.sim.config().host_link.rate_bps,
            duration,
            base_port: 10_000,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = self.ft.topology().clone();
        let specs = wl.generate(&hosts, &hosts, |h| topo.host(h).ip, &mut rng);
        install_flows(&mut self.sim, &specs, |w| &mut w.tcp);
        specs
    }

    /// Runs until `t`, then flushes trajectory memories so TIBs hold every
    /// record.
    pub fn run_and_flush(&mut self, t: Nanos) {
        self.sim.run_until(t);
        let now = self.sim.now();
        self.sim.world.flush_all(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_core::TibRead;
    use pathdump_topology::{LinkPattern, TimeRange};

    #[test]
    fn web_traffic_populates_tibs() {
        let mut tb = Testbed::default_k4();
        let specs = tb.add_web_traffic(0.2, Nanos::from_secs(2), 42);
        assert!(!specs.is_empty());
        tb.run_and_flush(Nanos::from_secs(6));
        let total_records: usize = tb.sim.world.agents.iter().map(|a| a.tib.len()).sum();
        assert!(
            total_records >= specs.len(),
            "every flow (plus ACK flows) must leave records: {total_records} < {}",
            specs.len()
        );
        // Reconstructions never failed on a healthy fabric.
        let failures: u64 = tb.sim.world.agents.iter().map(|a| a.recon_failures).sum();
        assert_eq!(failures, 0);
        // Paths recorded are valid shortest paths.
        for agent in &tb.sim.world.agents {
            for rec in agent.tib.records_vec() {
                assert!(!rec.path.is_empty());
            }
        }
        let _ = tb.sim.world.execute(
            &[HostId(0)],
            &pathdump_core::Query::GetFlows {
                link: LinkPattern::ANY,
                range: TimeRange::ANY,
            },
            false,
        );
    }
}
