//! Traffic measurement applications (§2.3): top-k flows, heavy hitters,
//! traffic matrix, congested-link diagnosis, per-link utilization, DDoS
//! source diagnosis — all thin compositions over the Host/Controller API.

use pathdump_core::{PathDumpWorld, Query, Response, TibRead};
use pathdump_topology::{FlowId, HostId, Ip, LinkDir, LinkPattern, TimeRange};
use std::collections::HashMap;

/// Top-k flows by bytes across the given hosts (the §2.3 heapq query,
/// distributed).
pub fn top_k_flows(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    k: u32,
    range: TimeRange,
) -> Vec<(u64, FlowId)> {
    match world.execute(hosts, &Query::TopK { k, range }, false) {
        Response::TopK { entries, .. } => entries,
        _ => unreachable!("TopK returns TopK"),
    }
}

/// Flows exceeding `min_bytes` across the given hosts.
pub fn heavy_hitters(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    min_bytes: u64,
    range: TimeRange,
) -> Vec<FlowId> {
    match world.execute(hosts, &Query::HeavyHitters { min_bytes, range }, false) {
        Response::Flows(f) => f,
        _ => unreachable!("HeavyHitters returns Flows"),
    }
}

/// (srcIP, dstIP) → bytes traffic matrix across the given hosts.
pub fn traffic_matrix(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    range: TimeRange,
) -> Vec<((Ip, Ip), u64)> {
    match world.execute(hosts, &Query::TrafficMatrix { range }, false) {
        Response::Matrix(m) => m,
        _ => unreachable!("TrafficMatrix returns Matrix"),
    }
}

/// Per-directed-link byte totals reconstructed purely from TIB records —
/// the switch-pair traffic matrix / link utilization view (Table 2's
/// "traffic volume between all switch pairs").
pub fn link_utilization(world: &PathDumpWorld, range: TimeRange) -> HashMap<LinkDir, u64> {
    let mut out: HashMap<LinkDir, u64> = HashMap::new();
    for agent in &world.agents {
        agent.tib.for_each_record(&mut |rec| {
            if !rec.overlaps(&range) {
                return;
            }
            for link in rec.path.links() {
                *out.entry(link).or_insert(0) += rec.bytes;
            }
        });
    }
    out
}

/// Congested-link diagnosis (Table 2): the flows crossing `link` in the
/// window, largest first — "find flows using a congested link, to help
/// rerouting".
pub fn flows_on_link(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    link: LinkDir,
    range: TimeRange,
) -> Vec<(u64, FlowId)> {
    let flows = match world.execute(
        hosts,
        &Query::GetFlows {
            link: LinkPattern::exact(link.from, link.to),
            range,
        },
        false,
    ) {
        Response::Flows(f) => f,
        _ => unreachable!(),
    };
    let mut with_bytes: Vec<(u64, FlowId)> = flows
        .into_iter()
        .map(|flow| {
            let bytes = match world.execute(
                hosts,
                &Query::GetCount {
                    flow,
                    path: None,
                    range,
                },
                false,
            ) {
                Response::Count { bytes, .. } => bytes,
                _ => 0,
            };
            (bytes, flow)
        })
        .collect();
    with_bytes.sort_by(|a, b| b.cmp(a));
    with_bytes
}

/// DDoS diagnosis (Table 2): source IPs sending to `victim`, with byte
/// totals, largest first.
pub fn ddos_sources(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    victim: Ip,
    range: TimeRange,
) -> Vec<(Ip, u64)> {
    let matrix = traffic_matrix(world, hosts, range);
    let mut sources: Vec<(Ip, u64)> = matrix
        .into_iter()
        .filter(|((_, dst), _)| *dst == victim)
        .map(|((src, _), bytes)| (src, bytes))
        .collect();
    sources.sort_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
    sources
}

/// Isolation check (Table 2): returns the flows between two host groups —
/// non-empty means the groups talked ("check if hosts are allowed to
/// talk").
pub fn isolation_violations(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    group_a: &[Ip],
    group_b: &[Ip],
    range: TimeRange,
) -> Vec<FlowId> {
    let flows = match world.execute(
        hosts,
        &Query::GetFlows {
            link: LinkPattern::ANY,
            range,
        },
        false,
    ) {
        Response::Flows(f) => f,
        _ => unreachable!(),
    };
    flows
        .into_iter()
        .filter(|f| {
            (group_a.contains(&f.src_ip) && group_b.contains(&f.dst_ip))
                || (group_b.contains(&f.src_ip) && group_a.contains(&f.dst_ip))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Testbed;
    use pathdump_topology::Nanos;

    fn loaded_testbed() -> (Testbed, Vec<(HostId, HostId, u16, u64)>) {
        let mut tb = Testbed::default_k4();
        let flows = vec![
            (
                tb.ft.host(0, 0, 0),
                tb.ft.host(1, 0, 0),
                6000u16,
                500_000u64,
            ),
            (tb.ft.host(0, 0, 1), tb.ft.host(2, 0, 0), 6001, 200_000),
            (tb.ft.host(0, 1, 0), tb.ft.host(3, 0, 0), 6002, 50_000),
            (tb.ft.host(1, 0, 0), tb.ft.host(2, 1, 1), 6003, 800_000),
        ];
        for &(s, d, p, sz) in &flows {
            tb.add_flow(s, d, p, sz, Nanos::ZERO);
        }
        tb.run_and_flush(Nanos::from_secs(60));
        assert!(tb.sim.world.tcp.all_complete());
        (tb, flows)
    }

    fn all_hosts() -> Vec<HostId> {
        (0..16).map(HostId).collect()
    }

    #[test]
    fn top_k_orders_by_bytes() {
        let (mut tb, flows) = loaded_testbed();
        let top = top_k_flows(&mut tb.sim.world, &all_hosts(), 3, TimeRange::ANY);
        assert_eq!(top.len(), 3);
        // Largest flow (800KB, sport 6003) first.
        assert_eq!(top[0].1.src_port, flows[3].2);
        assert!(top[0].0 >= top[1].0 && top[1].0 >= top[2].0);
    }

    #[test]
    fn heavy_hitters_threshold() {
        let (mut tb, _) = loaded_testbed();
        let hh = heavy_hitters(&mut tb.sim.world, &all_hosts(), 400_000, TimeRange::ANY);
        // Data flows above 400KB (wire bytes exceed payload): 6000, 6003.
        let sports: Vec<u16> = hh.iter().map(|f| f.src_port).collect();
        assert!(sports.contains(&6000));
        assert!(sports.contains(&6003));
        assert!(!sports.contains(&6002));
    }

    #[test]
    fn traffic_matrix_covers_pairs() {
        let (mut tb, flows) = loaded_testbed();
        let m = traffic_matrix(&mut tb.sim.world, &all_hosts(), TimeRange::ANY);
        for &(s, d, _, sz) in &flows {
            let (si, di) = (tb.ip_of(s), tb.ip_of(d));
            let cell = m
                .iter()
                .find(|((a, b), _)| *a == si && *b == di)
                .unwrap_or_else(|| panic!("missing matrix cell {si}->{di}"));
            assert!(cell.1 >= sz, "cell bytes cover the payload");
        }
    }

    #[test]
    fn link_utilization_consistent_with_counters() {
        let (tb, _) = loaded_testbed();
        let util = link_utilization(&tb.sim.world, TimeRange::ANY);
        assert!(!util.is_empty());
        // Every recorded link must be a real adjacent pair.
        for link in util.keys() {
            assert!(tb.adjacent(link.from, link.to), "{link} not in topology");
        }
    }

    #[test]
    fn congested_link_flows() {
        let (mut tb, _) = loaded_testbed();
        let util = link_utilization(&tb.sim.world, TimeRange::ANY);
        let (&busiest, _) = util.iter().max_by_key(|(_, b)| **b).unwrap();
        let flows = flows_on_link(&mut tb.sim.world, &all_hosts(), busiest, TimeRange::ANY);
        assert!(!flows.is_empty());
        assert!(flows.windows(2).all(|w| w[0].0 >= w[1].0), "sorted desc");
    }

    #[test]
    fn ddos_sources_ranked() {
        let mut tb = Testbed::default_k4();
        let victim = tb.ft.host(3, 1, 1);
        for (i, &(p, t, h)) in [(0usize, 0usize, 0usize), (0, 0, 1), (1, 0, 0), (2, 1, 0)]
            .iter()
            .enumerate()
        {
            let src = tb.ft.host(p, t, h);
            tb.add_flow(
                src,
                victim,
                7000 + i as u16,
                100_000 + i as u64 * 50_000,
                Nanos::ZERO,
            );
        }
        tb.run_and_flush(Nanos::from_secs(60));
        let vip = tb.ip_of(victim);
        let sources = ddos_sources(&mut tb.sim.world, &all_hosts(), vip, TimeRange::ANY);
        assert_eq!(sources.len(), 4, "all four attackers identified");
        assert!(sources.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn isolation_check() {
        let (mut tb, _) = loaded_testbed();
        let a = vec![tb.ip_of(tb.ft.host(0, 0, 0))];
        let b = vec![tb.ip_of(tb.ft.host(1, 0, 0))];
        let c = vec![tb.ip_of(tb.ft.host(3, 1, 0))];
        let viol = isolation_violations(&mut tb.sim.world, &all_hosts(), &a, &b, TimeRange::ANY);
        assert!(!viol.is_empty(), "groups talked: must be flagged");
        let viol = isolation_violations(&mut tb.sim.world, &all_hosts(), &a, &c, TimeRange::ANY);
        assert!(viol.is_empty(), "no traffic between these groups");
    }
}
