//! Path conformance checking (§2.3, §4.1, Figure 4).
//!
//! "A path conformance test is to check whether an actual path taken by a
//! packet conforms to operator policy" — e.g. path length at most 6 hops,
//! or packets must avoid a given switch. The check runs at the edge in
//! real time: the agent reconstructs each new path and raises `PC_FAIL`
//! with the offending trajectory.

use std::sync::Arc;

use pathdump_core::{Alarm, Invariant, PathDumpWorld, Reason};
use pathdump_topology::{HostId, SwitchId};
use pathdump_verifier::IntentModel;

/// A conformance policy, installable on a set of hosts.
#[derive(Clone, Debug, Default)]
pub struct ConformancePolicy {
    /// Maximum allowed hops (paper counting: host links included).
    pub max_hops: Option<usize>,
    /// Switches that packets must avoid.
    pub forbidden: Vec<SwitchId>,
    /// Statically verified forwarding intent: observed trajectories outside
    /// the intended path set raise `PC_FAIL` with the nearest intended path
    /// attached.
    pub intent: Option<Arc<IntentModel>>,
}

impl ConformancePolicy {
    /// The §2.3 example: "path length no more than 6, or packets must
    /// avoid switchID".
    pub fn example(forbidden: SwitchId) -> Self {
        ConformancePolicy {
            max_hops: Some(6),
            forbidden: vec![forbidden],
            ..ConformancePolicy::default()
        }
    }

    /// A policy *derived* from statically verified forwarding state rather
    /// than hand-written limits: every observed trajectory must be one of
    /// the verifier-enumerated intended paths. This is the check that
    /// catches misrouting that drops nothing.
    pub fn from_intent(intent: Arc<IntentModel>) -> Self {
        ConformancePolicy {
            intent: Some(intent),
            ..ConformancePolicy::default()
        }
    }

    /// Installs the policy on the given hosts (the controller's
    /// `install()` of a per-packet-arrival query).
    pub fn install(&self, world: &mut PathDumpWorld, hosts: &[HostId]) {
        world.install_invariant(
            hosts,
            Invariant {
                max_hops: self.max_hops,
                forbidden: self.forbidden.clone(),
                flow_filter: None,
                intent: self.intent.clone(),
            },
        );
    }
}

/// Filters a drained alarm batch down to conformance violations.
pub fn violations(alarms: &[Alarm]) -> Vec<&Alarm> {
    alarms
        .iter()
        .filter(|a| a.reason == Reason::PcFail)
        .collect()
}

/// Filters alarms for infeasible trajectories (the §2.4 wrong-switchID
/// detector).
pub fn infeasible(alarms: &[Alarm]) -> Vec<&Alarm> {
    alarms
        .iter()
        .filter(|a| a.reason == Reason::InfeasiblePath)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Testbed;
    use pathdump_simnet::Quirk;
    use pathdump_topology::Nanos;

    /// The Figure 4 experiment: a link failure makes packets take a
    /// longer-than-shortest failover path; the destination agent detects
    /// it in real time and alarms with the flow key and trajectory.
    ///
    /// Uses k=6 so the pod has a third ToR to bounce through (in a k=4
    /// pod this particular failure leaves no intra-pod detour).
    #[test]
    fn failover_path_raises_pc_fail() {
        use pathdump_core::WorldConfig;
        use pathdump_simnet::SimConfig;
        let mut tb = Testbed::fattree(6, SimConfig::for_tests(), WorldConfig::default());
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(0, 1, 0));
        // Policy: intra-pod traffic must stay at <= 4 hops.
        ConformancePolicy {
            max_hops: Some(4),
            ..ConformancePolicy::default()
        }
        .install(&mut tb.sim.world, &[dst]);
        // Fail Agg(0,0) -> ToR(0,1); pin several flows via Agg(0,0) so
        // their packets must take the failover detour (bounce via the
        // third ToR). Depending on the bounce ToR's ECMP hash a flow may
        // instead wander into a trapped walk; at least one must deliver
        // over the 5-switch detour and violate the policy.
        tb.sim.set_link_down(tb.ft.agg(0, 0), tb.ft.tor(0, 1), true);
        let port = tb.sim.link_port(tb.ft.tor(0, 0), tb.ft.agg(0, 0));
        let entry = tb.ft.tor(0, 0);
        for sport in 9000..9006u16 {
            let flow = tb.flow(src, dst, sport);
            tb.sim
                .install_quirk(entry, Quirk::ForwardFlowTo { flow, port });
            tb.add_flow(src, dst, sport, 10_000, Nanos::ZERO);
        }
        tb.sim.run_until(Nanos::from_secs(10));
        let alarms = tb.sim.world.drain_alarms();
        let v = violations(&alarms);
        assert!(!v.is_empty(), "some detour must violate the 4-hop policy");
        assert!(!v[0].paths.is_empty(), "alarm carries the trajectory");
        assert!(v[0].paths[0].num_hops() > 4);
        assert_eq!(v[0].host, dst, "detected at the destination edge");
    }

    #[test]
    fn forbidden_switch_detected() {
        let mut tb = Testbed::default_k4();
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let hosts: Vec<HostId> = (0..16).map(HostId).collect();
        // Forbid every core: any inter-pod flow must violate.
        ConformancePolicy {
            forbidden: (0..4).map(|j| tb.ft.core(j)).collect(),
            ..ConformancePolicy::default()
        }
        .install(&mut tb.sim.world, &hosts);
        tb.add_flow(src, dst, 9100, 20_000, Nanos::ZERO);
        tb.sim.run_until(Nanos::from_secs(5));
        let alarms = tb.sim.world.drain_alarms();
        assert!(!violations(&alarms).is_empty());
    }

    #[test]
    fn conforming_traffic_stays_silent() {
        let mut tb = Testbed::default_k4();
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(2, 0, 0));
        let hosts: Vec<HostId> = (0..16).map(HostId).collect();
        let _ = ConformancePolicy::example(tb.ft.core(99 % 4)).max_hops; // no-op use
        ConformancePolicy {
            max_hops: Some(6),
            ..ConformancePolicy::default()
        }
        .install(&mut tb.sim.world, &hosts);
        tb.add_flow(src, dst, 9200, 20_000, Nanos::ZERO);
        tb.sim.run_until(Nanos::from_secs(5));
        let alarms = tb.sim.world.drain_alarms();
        assert!(
            violations(&alarms).is_empty(),
            "6-hop shortest is conforming"
        );
        assert!(infeasible(&alarms).is_empty());
    }
}
