//! PathDump debugging applications (§2.3, §4, Table 2).
//!
//! Each module is one of the paper's applications, built strictly on the
//! Host/Controller API plus alarms — no application reads simulator ground
//! truth (that is reserved for tests, which verify the applications'
//! verdicts against it):
//!
//! | Module | Paper section | What it does |
//! |---|---|---|
//! | [`conformance`] | §4.1, Fig. 4 | path conformance + wrong-switchID pinpointing |
//! | [`load_imbalance`] | §4.2, Figs. 5–6 | ECMP and packet-spraying diagnosis |
//! | [`silent_drops`] | §4.3, Figs. 7–8 | MAX-COVERAGE localization of silent drops |
//! | [`blackhole`] | §4.4 | search-space reduction for blackholes |
//! | [`routing_loop`] | §4.5, Fig. 9 | real-time loop trapping |
//! | [`outcast`] | §4.6, Fig. 10 | TCP outcast diagnosis |
//! | [`traffic`] | §2.3, Table 2 | top-k, heavy hitters, traffic matrix, congested link, DDoS, isolation |
//! | [`scenarios`] | §5.1 | the shared fat-tree testbed harness |

pub mod blackhole;
pub mod conformance;
pub mod load_imbalance;
pub mod outcast;
pub mod routing_loop;
pub mod scenarios;
pub mod silent_drops;
pub mod traffic;

pub use scenarios::Testbed;
