//! Silent random packet-drop localization (§2.3, §4.3, Figures 7–8).
//!
//! Faulty interfaces drop packets at random without updating any visible
//! counter. PathDump localizes them from the edge: hosts raise `POOR_PERF`
//! alarms for flows with repeated retransmissions; per alarm the controller
//! pulls the victim flow's path(s) from the destination TIB (a *failure
//! signature*) and feeds the accumulated signatures to the MAX-COVERAGE
//! algorithm of Kompella et al. [23] — "implemented as only about 50 lines
//! of Python" in the paper, a few dozen lines of Rust here.

use pathdump_core::{PathDumpWorld, Query, Reason, Response};
use pathdump_topology::{HostId, LinkDir, Nanos, Path, TimeRange};
use std::collections::{HashMap, HashSet};

/// Greedy MAX-COVERAGE localization over failure signatures.
///
/// Each signature is the path (set of directed links) of one flow observed
/// to suffer; the algorithm repeatedly picks the link covering the most
/// uncovered signatures until all are covered. Links picked early explain
/// the most failures — with enough signatures the true faulty links
/// dominate.
#[derive(Clone, Debug, Default)]
pub struct MaxCoverage {
    signatures: Vec<Path>,
}

impl MaxCoverage {
    /// Creates an empty instance.
    pub fn new() -> Self {
        MaxCoverage::default()
    }

    /// Adds one failure signature (a suffering flow's path).
    pub fn add_signature(&mut self, path: Path) {
        if !path.is_empty() {
            self.signatures.push(path);
        }
    }

    /// Number of accumulated signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when no signatures have been collected.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Runs the greedy set cover; returns the hypothesis set of faulty
    /// links, most-suspect first.
    pub fn localize(&self) -> Vec<LinkDir> {
        let mut uncovered: Vec<HashSet<LinkDir>> = self
            .signatures
            .iter()
            .map(|p| p.links().collect())
            .collect();
        let mut picked = Vec::new();
        while uncovered.iter().any(|s| !s.is_empty()) {
            // Count coverage per candidate link.
            let mut count: HashMap<LinkDir, usize> = HashMap::new();
            for sig in &uncovered {
                for l in sig {
                    *count.entry(*l).or_insert(0) += 1;
                }
            }
            // Deterministic tie-break: highest count, then canonical order.
            let Some((&best, _)) = count
                .iter()
                .max_by_key(|(l, c)| (**c, std::cmp::Reverse((l.from.0, l.to.0))))
            else {
                break;
            };
            picked.push(best);
            for sig in &mut uncovered {
                if sig.contains(&best) {
                    sig.clear();
                }
            }
        }
        picked
    }
}

/// Accuracy of a localization against ground truth (Figure 7's metrics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// `TP / (TP + FN)`.
    pub recall: f64,
    /// `TP / (TP + FP)`.
    pub precision: f64,
}

/// Scores a hypothesis set against the ground-truth faulty links.
///
/// Links are compared *directed*: a faulty egress interface is the `from →
/// to` direction, and failure signatures record traversal direction.
pub fn score(hypothesis: &[LinkDir], truth: &[LinkDir]) -> Accuracy {
    let truth_set: HashSet<(u16, u16)> = truth
        .iter()
        .map(|l| {
            let (a, b) = (l.from.0, l.to.0);
            (a, b)
        })
        .collect();
    let tp = hypothesis
        .iter()
        .filter(|l| truth_set.contains(&(l.from.0, l.to.0)))
        .count() as f64;
    let fp = hypothesis.len() as f64 - tp;
    let fnn = truth.len() as f64 - tp;
    Accuracy {
        recall: if truth.is_empty() {
            1.0
        } else {
            tp / (tp + fnn)
        },
        precision: if hypothesis.is_empty() {
            0.0
        } else {
            tp / (tp + fp)
        },
    }
}

/// The controller-side debugging application: consumes `POOR_PERF` alarms,
/// fetches failure signatures from destination TIBs, and maintains the
/// localization.
#[derive(Debug, Default)]
pub struct SilentDropLocalizer {
    /// The accumulated MAX-COVERAGE state.
    pub coverage: MaxCoverage,
    /// (time, accuracy-history) samples, one per processed alarm batch.
    pub history: Vec<(Nanos, usize)>,
}

impl SilentDropLocalizer {
    /// Creates the application.
    pub fn new() -> Self {
        SilentDropLocalizer::default()
    }

    /// Processes pending alarms: for each `POOR_PERF` alarm, queries the
    /// destination host for the flow's paths since `since` (the §2.3
    /// query: `getPaths(flowID, <*,*>, (t1, *))`) and adds them as
    /// signatures.
    pub fn process_alarms(&mut self, world: &mut PathDumpWorld, now: Nanos, since: Nanos) {
        let alarms = world.drain_alarms();
        for alarm in alarms {
            if alarm.reason != Reason::PoorPerf {
                continue;
            }
            let Some(dst) = world.fabric.topology().host_by_ip(alarm.flow.dst_ip) else {
                continue;
            };
            let resp = world.execute_on_host(
                dst,
                &Query::GetPaths {
                    flow: alarm.flow,
                    link: pathdump_topology::LinkPattern::ANY,
                    range: TimeRange::since(since),
                },
                true,
            );
            if let Response::Paths(paths) = resp {
                for p in paths {
                    self.coverage.add_signature(p);
                }
            }
            self.history.push((now, self.coverage.len()));
        }
    }

    /// Current hypothesis.
    pub fn localize(&self) -> Vec<LinkDir> {
        self.coverage.localize()
    }
}

/// Helper for experiments: all hosts list of a world.
pub fn all_hosts(world: &PathDumpWorld) -> Vec<HostId> {
    (0..world.fabric.topology().num_hosts() as u32)
        .map(HostId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Testbed;
    use pathdump_simnet::FaultState;
    use pathdump_topology::SwitchId;

    fn p(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    fn l(a: u16, b: u16) -> LinkDir {
        LinkDir::new(SwitchId(a), SwitchId(b))
    }

    #[test]
    fn single_fault_localized_exactly() {
        let mut mc = MaxCoverage::new();
        // Three flows, all crossing link 1->2, different elsewhere.
        mc.add_signature(p(&[0, 1, 2, 3]));
        mc.add_signature(p(&[5, 1, 2, 6]));
        mc.add_signature(p(&[7, 1, 2, 8]));
        let hyp = mc.localize();
        assert_eq!(hyp, vec![l(1, 2)], "shared link must be picked first");
        let acc = score(&hyp, &[l(1, 2)]);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.precision, 1.0);
    }

    #[test]
    fn two_faults_need_two_picks() {
        let mut mc = MaxCoverage::new();
        mc.add_signature(p(&[0, 1, 2]));
        mc.add_signature(p(&[0, 1, 2]));
        mc.add_signature(p(&[5, 6, 7]));
        let hyp = mc.localize();
        assert_eq!(hyp.len(), 2, "disjoint signatures force two links");
        let acc = score(&hyp, &[l(0, 1), l(6, 7)]);
        assert!(acc.recall >= 0.5);
    }

    #[test]
    fn few_signatures_give_low_precision() {
        let mut mc = MaxCoverage::new();
        // One signature: every link on it is an equally good explanation;
        // greedy picks one, which may be wrong.
        mc.add_signature(p(&[0, 1, 2, 3]));
        let hyp = mc.localize();
        assert_eq!(hyp.len(), 1);
        // With truth {2->3}, a pick of (0,1) is an FP: precision <= 1.
        let acc = score(&hyp, &[l(2, 3)]);
        assert!(acc.precision <= 1.0);
    }

    #[test]
    fn score_edge_cases() {
        assert_eq!(score(&[], &[l(1, 2)]).recall, 0.0);
        assert_eq!(score(&[], &[l(1, 2)]).precision, 0.0);
        let perfect = score(&[l(1, 2)], &[l(1, 2)]);
        assert_eq!(perfect.recall, 1.0);
        assert_eq!(perfect.precision, 1.0);
        let half = score(&[l(1, 2), l(3, 4)], &[l(1, 2)]);
        assert_eq!(half.recall, 1.0);
        assert_eq!(half.precision, 0.5);
    }

    /// End-to-end: a silently dropping interface is localized from edge
    /// alarms alone (the small-scale Figure 7 experiment).
    ///
    /// The drop rate must be high enough to trip the consecutive-
    /// retransmission monitor yet below 100%, so victim flows still
    /// deliver packets and their paths land in the destination TIBs (the
    /// failure signatures MAX-COVERAGE consumes).
    #[test]
    fn localizes_injected_silent_drop() {
        let mut tb = Testbed::default_k4();
        // Faulty interface: Agg(0,0) -> ToR(0,1), 25% silent drops.
        let faulty = LinkDir::new(tb.ft.agg(0, 0), tb.ft.tor(0, 1));
        tb.sim.set_directed_fault(
            faulty.from,
            faulty.to,
            FaultState {
                silent_drop_rate: 0.25,
                ..FaultState::HEALTHY
            },
        );
        // Long-lived flows into rack (0,1), one per remote rack, staggered
        // to keep congestion (and therefore alarm noise) low. Roughly half
        // are ECMP-hashed across the faulty interface.
        let mut sport = 7000;
        for spod in [1usize, 2, 3] {
            for t in 0..2 {
                let src = tb.ft.host(spod, t, 0);
                for hdst in 0..2 {
                    let dst = tb.ft.host(0, 1, hdst);
                    let start = Nanos::from_millis(100 * (sport - 7000) as u64);
                    tb.add_flow(src, dst, sport, 2_000_000, start);
                    sport += 1;
                }
            }
        }
        let mut app = SilentDropLocalizer::new();
        // Drive the run in 200ms steps, processing alarms as they appear.
        for step in 1..=150u64 {
            let t = Nanos::from_millis(200 * step);
            tb.sim.run_until(t);
            app.process_alarms(&mut tb.sim.world, t, Nanos::ZERO);
        }
        assert!(
            !app.coverage.is_empty(),
            "retransmitting flows must produce signatures"
        );
        let hyp = app.localize();
        let acc = score(&hyp, &[faulty]);
        assert!(
            acc.recall >= 1.0,
            "the faulty link must be in the hypothesis: {hyp:?} ({} signatures)",
            app.coverage.len()
        );
    }
}
