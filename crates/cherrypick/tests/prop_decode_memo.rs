//! Differential pin for the memoized trajectory decode: for arbitrary
//! (src, dst, headers) inputs — shortest paths, random fabric walks
//! (loopy ones included), and raw garbage tag stacks — decoding through a
//! [`DecodeMemo`] must produce exactly the cold
//! `FatTreeReconstructor`/`Vl2Reconstructor` result: the same `Ok` path or
//! the same `ReconstructError`, on the first (miss) decode *and* on every
//! repeat (hit) decode.
//!
//! Inputs are kept small: the vendored proptest stub does not shrink.

use pathdump_cherrypick::{
    tags_for_walk, DecodeMemo, FatTreeCherryPick, FatTreeReconstructor, Vl2CherryPick,
    Vl2Reconstructor,
};
use pathdump_simnet::TagHeaders;
use pathdump_topology::{FatTree, FatTreeParams, HostId, UpDownRouting, Vl2, Vl2Params};
use proptest::prelude::*;

/// One generated decode input: endpoints plus a header recipe.
/// `kind % 3` selects: 0 = a shortest path's real tags, 1 = tags sampled
/// on a random walk through the fabric (may loop or dead-end), 2 = raw
/// tag values (mostly infeasible, some invalid).
type InputSpec = (u8, u32, u32, Vec<u16>, u8, bool);

fn ft_headers(ft: &FatTree, policy: &FatTreeCherryPick, spec: &InputSpec) -> TagHeaders {
    let (kind, src_sel, dst_sel, raw, walk_len, _) = spec;
    let n = ft.topology().num_hosts() as u32;
    let src = HostId(src_sel % n);
    let dst = HostId(dst_sel % n);
    match kind % 3 {
        0 => {
            if src == dst {
                return TagHeaders::default();
            }
            let paths = ft.all_paths(src, dst);
            let path = &paths[*src_sel as usize % paths.len()];
            tags_for_walk(policy, ft, &path.0)
        }
        1 => {
            // Random walk from the source ToR, steered by the raw values.
            let topo = ft.topology();
            let mut walk = vec![topo.host(src).tor];
            for (i, &step) in raw.iter().enumerate() {
                if i >= *walk_len as usize % 8 {
                    break;
                }
                let nbrs = topo.switch_neighbors(*walk.last().unwrap());
                if nbrs.is_empty() {
                    break;
                }
                walk.push(nbrs[step as usize % nbrs.len()].1);
            }
            tags_for_walk(policy, ft, &walk)
        }
        _ => {
            let mut h = TagHeaders::default();
            for &t in raw {
                h.push_tag(t % 64); // in and around the k=4/k=6 ID ranges
            }
            h
        }
    }
}

fn vl2_headers(v: &Vl2, policy: &Vl2CherryPick, spec: &InputSpec) -> TagHeaders {
    let (kind, src_sel, dst_sel, raw, walk_len, with_dscp) = spec;
    let n = v.topology().num_hosts() as u32;
    let src = HostId(src_sel % n);
    let dst = HostId(dst_sel % n);
    let mut h = match kind % 3 {
        0 => {
            if src == dst {
                TagHeaders::default()
            } else {
                let paths = v.all_paths(src, dst);
                let path = &paths[*src_sel as usize % paths.len()];
                tags_for_walk(policy, v, &path.0)
            }
        }
        1 => {
            let topo = v.topology();
            let mut walk = vec![topo.host(src).tor];
            for (i, &step) in raw.iter().enumerate() {
                if i >= *walk_len as usize % 8 {
                    break;
                }
                let nbrs = topo.switch_neighbors(*walk.last().unwrap());
                if nbrs.is_empty() {
                    break;
                }
                walk.push(nbrs[step as usize % nbrs.len()].1);
            }
            tags_for_walk(policy, v, &walk)
        }
        _ => {
            let mut h = TagHeaders::default();
            for &t in raw {
                h.push_tag(t % 64);
            }
            h
        }
    };
    // Garbage stacks optionally claim a DSCP sample (slot 0/1/out-of-range).
    if kind % 3 == 2 && *with_dscp {
        h.set_dscp_sample(raw.first().map(|&t| (t % 3) as u8).unwrap_or(0));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fattree_memo_decode_matches_cold(
        specs in proptest::collection::vec(
            (0u8..=255, 0u32..4096, 0u32..4096,
             proptest::collection::vec(0u16..4096, 0..=5), 0u8..=255, any::<bool>()),
            1..8,
        ),
        k in prop_oneof![Just(4u16), Just(6u16)],
    ) {
        let ft = FatTree::build(FatTreeParams { k });
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        let mut memo = DecodeMemo::default();
        let n = ft.topology().num_hosts() as u32;
        for spec in &specs {
            let src = HostId(spec.1 % n);
            let dst = HostId(spec.2 % n);
            let headers = ft_headers(&ft, &policy, spec);
            let cold = recon.reconstruct(src, dst, &headers);
            // First decode (likely a miss) and a repeat (guaranteed hit)
            // must both equal the cold result.
            for round in 0..2 {
                let memoized = recon
                    .reconstruct_memo(&mut memo, src, dst, headers.dscp_sample(), &headers.tags)
                    .cloned();
                prop_assert_eq!(
                    &memoized, &cold,
                    "k={} round {} src={:?} dst={:?} tags={:?}",
                    k, round, src, dst, &headers.tags
                );
            }
        }
    }

    #[test]
    fn vl2_memo_decode_matches_cold(
        specs in proptest::collection::vec(
            (0u8..=255, 0u32..4096, 0u32..4096,
             proptest::collection::vec(0u16..4096, 0..=5), 0u8..=255, any::<bool>()),
            1..8,
        ),
    ) {
        let v = Vl2::build(Vl2Params { da: 4, di: 4, hosts_per_tor: 2 });
        let policy = Vl2CherryPick::new(v.clone());
        let recon = Vl2Reconstructor::new(v.clone());
        let mut memo = DecodeMemo::default();
        let n = v.topology().num_hosts() as u32;
        for spec in &specs {
            let src = HostId(spec.1 % n);
            let dst = HostId(spec.2 % n);
            let headers = vl2_headers(&v, &policy, spec);
            let cold = recon.reconstruct(src, dst, &headers);
            for round in 0..2 {
                let memoized = recon
                    .reconstruct_memo(&mut memo, src, dst, headers.dscp_sample(), &headers.tags)
                    .cloned();
                prop_assert_eq!(
                    &memoized, &cold,
                    "round {} src={:?} dst={:?} dscp={:?} tags={:?}",
                    round, src, dst, headers.dscp_sample(), &headers.tags
                );
            }
        }
    }
}
