//! End-to-end check: packets forwarded by the simulated dataplane under the
//! CherryPick tag policy must reconstruct to exactly the ground-truth
//! trajectory the simulator recorded — across ECMP, spraying, failover
//! detours, and on both supported topologies.

use pathdump_cherrypick::{
    FatTreeCherryPick, FatTreeReconstructor, Vl2CherryPick, Vl2Reconstructor,
};
use pathdump_simnet::{HostApi, LoadBalance, Packet, Punt, SimConfig, Simulator, World};
use pathdump_topology::{FatTree, FatTreeParams, FlowId, HostId, Nanos, Path, Vl2, Vl2Params};

/// Collects every delivered packet with its headers and ground truth.
#[derive(Default)]
struct Collector {
    delivered: Vec<(HostId, Packet)>,
    punts: Vec<Punt>,
}

impl World for Collector {
    fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet) {
        let h = api.host();
        self.delivered.push((h, pkt));
    }
    fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
    fn on_punt(&mut self, _api: &mut pathdump_simnet::CtrlApi<'_>, punt: Punt) {
        self.punts.push(punt);
    }
}

fn flow_between(ft: &FatTree, src: HostId, dst: HostId, sport: u16) -> FlowId {
    let t = ft.topology_ref();
    FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
}

/// Convenience: FatTree already implements UpDownRouting, but we need the
/// Topology accessor without importing the trait at every call site.
trait TopoRef {
    fn topology_ref(&self) -> &pathdump_topology::Topology;
}
impl TopoRef for FatTree {
    fn topology_ref(&self) -> &pathdump_topology::Topology {
        use pathdump_topology::UpDownRouting;
        self.topology()
    }
}
impl TopoRef for Vl2 {
    fn topology_ref(&self) -> &pathdump_topology::Topology {
        use pathdump_topology::UpDownRouting;
        self.topology()
    }
}

#[test]
fn fattree_ecmp_reconstruction_matches_ground_truth() {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let policy = FatTreeCherryPick::new(ft.clone());
    let recon = FatTreeReconstructor::new(ft.clone());
    let mut sim = Simulator::new(
        &ft,
        SimConfig::for_tests(),
        Box::new(policy),
        Collector::default(),
    );
    // All-pairs sample: every host sends to every other host.
    let n = ft.topology_ref().num_hosts() as u32;
    let mut sent = 0;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (src, dst) = (HostId(a), HostId(b));
            let f = flow_between(&ft, src, dst, 10_000 + sent as u16);
            let pkt = Packet::data(0, f, 0, 500, Nanos::ZERO);
            sim.send_from(src, pkt);
            sent += 1;
        }
    }
    sim.run_until(Nanos::from_secs(2));
    assert_eq!(sim.world.delivered.len(), sent, "all packets delivered");
    assert!(
        sim.world.punts.is_empty(),
        "no punts on healthy shortest paths"
    );
    for (host, pkt) in &sim.world.delivered {
        let src = ft
            .topology_ref()
            .host_by_ip(pkt.flow.src_ip)
            .expect("known source");
        let decoded = recon
            .reconstruct(src, *host, &pkt.headers)
            .unwrap_or_else(|e| panic!("flow {}: {e}", pkt.flow));
        assert_eq!(
            decoded.0, pkt.gt_path,
            "reconstruction must equal ground truth"
        );
    }
}

#[test]
fn fattree_spraying_reconstruction_matches_ground_truth() {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let policy = FatTreeCherryPick::new(ft.clone());
    let recon = FatTreeReconstructor::new(ft.clone());
    let mut sim = Simulator::new(
        &ft,
        SimConfig::for_tests(),
        Box::new(policy),
        Collector::default(),
    );
    sim.set_lb_all(LoadBalance::Spray);
    let (src, dst) = (ft.host(0, 0, 0), ft.host(3, 1, 1));
    let f = flow_between(&ft, src, dst, 555);
    for _ in 0..100 {
        let pkt = Packet::data(0, f, 0, 500, Nanos::ZERO);
        sim.send_from(src, pkt);
    }
    sim.run_until(Nanos::from_secs(2));
    assert_eq!(sim.world.delivered.len(), 100);
    let mut distinct = std::collections::HashSet::new();
    for (host, pkt) in &sim.world.delivered {
        let decoded = recon.reconstruct(src, *host, &pkt.headers).unwrap();
        assert_eq!(decoded.0, pkt.gt_path);
        distinct.insert(decoded);
    }
    assert_eq!(
        distinct.len(),
        4,
        "per-packet records must expose all 4 paths"
    );
}

#[test]
fn fattree_intra_pod_failover_detour_reconstructs_in_band() {
    // Fig-4-style: the direct down link Agg(0,0)->ToR(0,1) fails; packets
    // pinned through Agg(0,0) bounce via a third ToR (k=6 pods have three)
    // and the 5-switch detour must be traced in-band with two tags.
    let ft = FatTree::build(FatTreeParams { k: 6 });
    let policy = FatTreeCherryPick::new(ft.clone());
    let recon = FatTreeReconstructor::new(ft.clone());
    let (src, dst) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
    let mut saw_five_switch_detour = false;
    for sport in 0..24u16 {
        let mut sim = Simulator::new(
            &ft,
            SimConfig::for_tests(),
            Box::new(FatTreeCherryPick::new(ft.clone())),
            Collector::default(),
        );
        let f = flow_between(&ft, src, dst, 901 + sport);
        sim.set_link_down(ft.agg(0, 0), ft.tor(0, 1), true);
        sim.install_quirk(
            ft.tor(0, 0),
            pathdump_simnet::Quirk::ForwardFlowTo {
                flow: f,
                port: sim.link_port(ft.tor(0, 0), ft.agg(0, 0)),
            },
        );
        sim.send_from(src, Packet::data(0, f, 0, 500, Nanos::ZERO));
        sim.run_until(Nanos::from_secs(2));
        // Depending on the ECMP hash at the bounce ToR, the walk is either
        // the 5-switch in-band detour or a longer punted one; check the
        // in-band case whenever it occurs.
        for (host, pkt) in &sim.world.delivered {
            let gt = Path::new(pkt.gt_path.clone());
            assert!(gt.len() > 3, "detour must be longer than shortest: {gt}");
            let decoded = recon
                .reconstruct(src, *host, &pkt.headers)
                .unwrap_or_else(|e| panic!("sport {sport}, {gt}: {e}"));
            assert_eq!(decoded, gt);
            if gt.len() == 5 {
                saw_five_switch_detour = true;
            }
        }
    }
    let _ = policy;
    assert!(
        saw_five_switch_detour,
        "at least one flow must take the 5-switch in-band detour"
    );
}

#[test]
fn vl2_reconstruction_matches_ground_truth() {
    let v = Vl2::build(Vl2Params {
        da: 4,
        di: 4,
        hosts_per_tor: 2,
    });
    let policy = Vl2CherryPick::new(v.clone());
    let recon = Vl2Reconstructor::new(v.clone());
    let mut sim = Simulator::new(
        &v,
        SimConfig::for_tests(),
        Box::new(policy),
        Collector::default(),
    );
    let n = v.topology_ref().num_hosts() as u32;
    let mut sent = 0;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (src, dst) = (HostId(a), HostId(b));
            let t = v.topology_ref();
            let f = FlowId::tcp(t.host(src).ip, 20_000 + sent as u16, t.host(dst).ip, 80);
            sim.send_from(src, Packet::data(0, f, 0, 400, Nanos::ZERO));
            sent += 1;
        }
    }
    sim.run_until(Nanos::from_secs(2));
    assert_eq!(sim.world.delivered.len(), sent);
    for (host, pkt) in &sim.world.delivered {
        let src = v.topology_ref().host_by_ip(pkt.flow.src_ip).unwrap();
        let decoded = recon
            .reconstruct(src, *host, &pkt.headers)
            .unwrap_or_else(|e| panic!("flow {}: {e}", pkt.flow));
        assert_eq!(decoded.0, pkt.gt_path);
    }
}

#[test]
fn punted_walks_recoverable_by_controller_search() {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let policy = FatTreeCherryPick::new(ft.clone());
    let recon = FatTreeReconstructor::new(ft.clone());
    let mut sim = Simulator::new(
        &ft,
        SimConfig::for_tests(),
        Box::new(policy),
        Collector::default(),
    );
    // Force a down-path bounce in the destination pod: the walk needs 3
    // samples, so the dst ToR punts it to the controller, where the search
    // recovers the full trajectory from the carried tags.
    let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 1, 0));
    let f = flow_between(&ft, src, dst, 733);
    // Kill both down links from the dst-pod aggs to ToR(1,1) so the packet
    // bounces via ToR(1,0).
    sim.set_link_down(ft.agg(1, 0), ft.tor(1, 1), true);
    sim.install_quirk(
        ft.tor(0, 0),
        pathdump_simnet::Quirk::ForwardFlowTo {
            flow: f,
            port: sim.link_port(ft.tor(0, 0), ft.agg(0, 0)),
        },
    );
    sim.send_from(src, Packet::data(0, f, 0, 500, Nanos::ZERO));
    sim.run_until(Nanos::from_secs(2));
    assert_eq!(sim.world.punts.len(), 1, "3-tag walk must punt");
    let punt = &sim.world.punts[0];
    // The controller knows the punting switch's ingress port, which anchors
    // the walk's penultimate switch and disambiguates pod-agnostic core
    // samples.
    let prev = punt
        .in_port
        .and_then(|p| match ft.topology_ref().peer(punt.sw, p) {
            pathdump_topology::Peer::Switch { sw, .. } => Some(sw),
            _ => None,
        });
    let walks = recon.search_walk(
        ft.tor(0, 0),
        punt.sw,
        prev,
        &punt.pkt.headers.tags,
        punt.pkt.gt_path.len() + 2,
    );
    assert_eq!(walks.len(), 1, "controller search must be unambiguous");
    assert_eq!(walks[0].0, punt.pkt.gt_path);
}
