//! The trajectory cache (§3.2, Figure 2).
//!
//! "It first looks up the trajectory cache with srcIP and link IDs. If
//! there is a cache hit, it immediately converts the link IDs into a path.
//! If not, the module maps link IDs to a series of switches by referring to
//! a physical topology, and builds an end-to-end path. It then updates the
//! trajectory cache with (srcIP, link IDs, path)."

use pathdump_topology::{Ip, Path};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Cache key: source IP plus the sampled trajectory state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Source IP (identifies the source ToR).
    pub src_ip: Ip,
    /// VL2 DSCP sample, if any.
    pub dscp_sample: Option<u8>,
    /// VLAN tags in push order.
    pub tags: Vec<u16>,
}

/// Bounded FIFO cache from (srcIP, link IDs) to reconstructed paths.
#[derive(Clone, Debug)]
pub struct TrajectoryCache {
    map: HashMap<CacheKey, Path>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl TrajectoryCache {
    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        TrajectoryCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, counting hit/miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Path> {
        self.probe(key).cloned()
    }

    /// Borrowed lookup: like [`lookup`](Self::lookup) but hands the path
    /// back by reference — the agent's allocation-free ingest path clones
    /// only when it actually exports a record.
    pub fn probe(&mut self, key: &CacheKey) -> Option<&Path> {
        match self.map.get(key) {
            Some(p) => {
                self.hits += 1;
                Some(p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a mapping, evicting the oldest entry when full.
    pub fn insert(&mut self, key: CacheKey, path: Path) {
        match self.map.entry(key.clone()) {
            Entry::Occupied(mut e) => {
                e.insert(path);
            }
            Entry::Vacant(e) => {
                e.insert(path);
                self.order.push_back(key);
                if self.order.len() > self.capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.map.remove(&old);
                    }
                }
            }
        }
    }

    /// Looks up or computes-and-caches a path.
    pub fn get_or_insert_with<E>(
        &mut self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Path, E>,
    ) -> Result<Path, E> {
        if let Some(p) = self.lookup(&key) {
            return Ok(p);
        }
        let p = compute()?;
        self.insert(key, p.clone());
        Ok(p)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Approximate resident bytes (for the §5.3 storage accounting).
    pub fn approx_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| {
                std::mem::size_of::<CacheKey>()
                    + k.tags.len() * 2
                    + std::mem::size_of::<Path>()
                    + v.0.len() * 2
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::SwitchId;

    fn key(ip: u32, tags: &[u16]) -> CacheKey {
        CacheKey {
            src_ip: Ip(ip),
            dscp_sample: None,
            tags: tags.to_vec(),
        }
    }

    fn path(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    #[test]
    fn hit_miss_counting() {
        let mut c = TrajectoryCache::new(4);
        assert_eq!(c.lookup(&key(1, &[5])), None);
        c.insert(key(1, &[5]), path(&[1, 2, 3]));
        assert_eq!(c.lookup(&key(1, &[5])), Some(path(&[1, 2, 3])));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let mut c = TrajectoryCache::new(4);
        c.insert(key(1, &[5]), path(&[1]));
        c.insert(key(2, &[5]), path(&[2]));
        c.insert(key(1, &[6]), path(&[3]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.lookup(&key(2, &[5])), Some(path(&[2])));
    }

    #[test]
    fn eviction_fifo() {
        let mut c = TrajectoryCache::new(2);
        c.insert(key(1, &[]), path(&[1]));
        c.insert(key(2, &[]), path(&[2]));
        c.insert(key(3, &[]), path(&[3]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&key(1, &[])), None, "oldest entry evicted");
        assert!(c.lookup(&key(3, &[])).is_some());
    }

    #[test]
    fn get_or_insert_computes_once() {
        let mut c = TrajectoryCache::new(4);
        let mut calls = 0;
        for _ in 0..3 {
            let p: Result<Path, ()> = c.get_or_insert_with(key(9, &[1, 2]), || {
                calls += 1;
                Ok(path(&[9, 8, 7]))
            });
            assert_eq!(p.unwrap(), path(&[9, 8, 7]));
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn compute_errors_not_cached() {
        let mut c = TrajectoryCache::new(4);
        let r: Result<Path, &str> = c.get_or_insert_with(key(9, &[]), || Err("nope"));
        assert!(r.is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn dscp_distinguishes_keys() {
        let mut c = TrajectoryCache::new(4);
        let mut k1 = key(1, &[7]);
        k1.dscp_sample = Some(0);
        let mut k2 = key(1, &[7]);
        k2.dscp_sample = Some(1);
        c.insert(k1.clone(), path(&[1]));
        assert_eq!(c.lookup(&k2), None);
        assert_eq!(c.lookup(&k1), Some(path(&[1])));
    }
}
