//! The switch-side sampling rules, as [`TagPolicy`] implementations.
//!
//! CherryPick samples "one link every two hops" (§3.1). Mechanically, each
//! switch flips the hop-parity bit carried in the packet's DSCP field and —
//! on every *even* switch along the trajectory — pushes the ID of its
//! ingress link (the Figure 9 behaviour: "a VLAN tag whose value is an ID
//! for link S2–S3 appended by S3"). Everything is expressible as two static
//! OpenFlow rules per ingress port ("one for checking if DSCP field is
//! unused, and the other to add VLAN tag otherwise"), installed once at
//! controller start-up; see [`crate::rules`] for the accounting.
//!
//! Consequences on a fat-tree (`host` hops excluded, switches numbered from
//! 1):
//! - intra-rack: 1 switch, no tag;
//! - intra-pod shortest (ToR–Agg–ToR): one class-A tag pushed by the
//!   aggregate — its ingress ToR→Agg link;
//! - inter-pod shortest (5 switches): class-A tag at the source aggregate +
//!   class-B tag at the destination-pod aggregate (its ingress core link):
//!   two tags, within the QinQ ASIC limit;
//! - each 2-hop detour adds one tag; a third tag makes the next switch punt
//!   the packet to the controller — the "instant trap" used for routing
//!   loops, and the slow path that still recovers paths the 2-tag budget
//!   cannot carry in-band (deviation from the paper's hand-tuned fat-tree
//!   rules documented in DESIGN.md §5.1).
//!
//! On VL2 the first sample (always the source ToR→aggregate uplink) rides
//! in the DSCP field; later samples use VLAN tags.

use crate::ids::{FatTreeIds, Vl2Ids};
use pathdump_simnet::{TagHeaders, TagPolicy};
use pathdump_topology::{FatTree, Peer, PortNo, SwitchId, UpDownRouting, Vl2};

/// CherryPick sampling rules for a fat-tree.
#[derive(Clone, Debug)]
pub struct FatTreeCherryPick {
    ft: FatTree,
    ids: FatTreeIds,
}

impl FatTreeCherryPick {
    /// Builds the policy for a topology.
    pub fn new(ft: FatTree) -> Self {
        let ids = FatTreeIds::for_topology(&ft);
        FatTreeCherryPick { ft, ids }
    }

    /// The link-ID codec in use.
    pub fn ids(&self) -> FatTreeIds {
        self.ids
    }

    /// The topology the rules were generated for.
    pub fn fattree(&self) -> &FatTree {
        &self.ft
    }
}

impl TagPolicy for FatTreeCherryPick {
    fn on_forward(
        &self,
        sw: SwitchId,
        in_port: Option<PortNo>,
        _out_port: PortNo,
        headers: &mut TagHeaders,
    ) {
        // Rule pair per ingress port: flip parity; on even switches push the
        // ingress-link ID.
        let odd = headers.toggle_parity();
        if odd {
            return;
        }
        let Some(in_port) = in_port else {
            // Controller packet-out: ingress link unknown, nothing to push.
            return;
        };
        if let Peer::Switch { sw: neighbor, .. } = self.ft.topology().peer(sw, in_port) {
            if let Some(tag) = self.ids.ingress_tag(&self.ft, neighbor, sw) {
                headers.push_tag(tag);
            }
        }
    }
}

/// CherryPick sampling rules for VL2.
#[derive(Clone, Debug)]
pub struct Vl2CherryPick {
    v: Vl2,
    ids: Vl2Ids,
}

impl Vl2CherryPick {
    /// Builds the policy for a topology.
    pub fn new(v: Vl2) -> Self {
        let ids = Vl2Ids::for_topology(&v);
        Vl2CherryPick { v, ids }
    }

    /// The link-ID codec in use.
    pub fn ids(&self) -> Vl2Ids {
        self.ids
    }

    /// The topology the rules were generated for.
    pub fn vl2(&self) -> &Vl2 {
        &self.v
    }
}

impl TagPolicy for Vl2CherryPick {
    fn on_forward(
        &self,
        sw: SwitchId,
        in_port: Option<PortNo>,
        _out_port: PortNo,
        headers: &mut TagHeaders,
    ) {
        let odd = headers.toggle_parity();
        if odd {
            return;
        }
        let Some(in_port) = in_port else {
            return;
        };
        let Peer::Switch { sw: neighbor, .. } = self.v.topology().peer(sw, in_port) else {
            return;
        };
        // First sample: if the ingress is a ToR->Agg uplink and the DSCP
        // sample field is unused, spend it (pod-local slot); otherwise fall
        // back to a VLAN tag. This is exactly the paper's two-rules-per-
        // ingress-port scheme.
        use pathdump_topology::Tier;
        let (nt, np) = (self.v.coords(neighbor), self.v.coords(sw));
        if headers.dscp_sample().is_none() {
            if let ((Tier::Tor, tor), (Tier::Agg, agg)) = (nt, np) {
                if let Some(slot) = self.ids.slot_of(&self.v, tor, agg) {
                    headers.set_dscp_sample(slot as u8);
                    return;
                }
            }
        }
        if let Some(tag) = self.ids.ingress_tag(&self.v, neighbor, sw) {
            headers.push_tag(tag);
        }
    }
}

/// Walks a switch path applying a tag policy exactly as the dataplane
/// would, returning the resulting headers. Test/diagnostic helper: lets
/// unit tests exercise sampling without running the full simulator.
pub fn tags_for_walk<P, R>(policy: &P, routing: &R, path: &[SwitchId]) -> TagHeaders
where
    P: TagPolicy,
    R: pathdump_topology::UpDownRouting + ?Sized,
{
    let topo = routing.topology();
    let mut headers = TagHeaders::default();
    for (i, &sw) in path.iter().enumerate() {
        let in_port = if i == 0 {
            // First switch: ingress from a host port; any host-facing port
            // stands in (the policy only needs to see a non-switch peer).
            topo.switch(sw)
                .ports
                .iter()
                .position(|p| matches!(p, Peer::Host(_)))
                .map(|p| PortNo(p as u8))
        } else {
            topo.switch(sw).port_towards(path[i - 1])
        };
        // Egress is irrelevant to the sampling decision; use port 0.
        policy.on_forward(sw, in_port, PortNo(0), &mut headers);
    }
    headers
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FatTreeParams, UpDownRouting, Vl2Params};

    fn ft4() -> FatTree {
        FatTree::build(FatTreeParams { k: 4 })
    }

    #[test]
    fn intra_rack_no_tags() {
        let ft = ft4();
        let p = FatTreeCherryPick::new(ft.clone());
        let h = tags_for_walk(&p, &ft, &[ft.tor(0, 0)]);
        assert_eq!(h.tag_count(), 0);
        assert!(h.parity(), "one switch flips parity once");
    }

    #[test]
    fn intra_pod_one_class_a_tag() {
        let ft = ft4();
        let p = FatTreeCherryPick::new(ft.clone());
        let path = [ft.tor(0, 0), ft.agg(0, 1), ft.tor(0, 1)];
        let h = tags_for_walk(&p, &ft, &path);
        assert_eq!(h.tags, vec![p.ids().tor_agg(0, 1)]);
    }

    #[test]
    fn inter_pod_two_tags() {
        let ft = ft4();
        let p = FatTreeCherryPick::new(ft.clone());
        // tor(0,0) -> agg(0,1) -> core(3) -> agg(2,1) -> tor(2,0).
        let path = [
            ft.tor(0, 0),
            ft.agg(0, 1),
            ft.core(3),
            ft.agg(2, 1),
            ft.tor(2, 0),
        ];
        let h = tags_for_walk(&p, &ft, &path);
        assert_eq!(
            h.tags,
            vec![p.ids().tor_agg(0, 1), p.ids().agg_core(3)],
            "source agg samples its ToR link; dst-pod agg samples its core link"
        );
        assert!(h.parity(), "5 switches leave parity odd");
    }

    #[test]
    fn detour_adds_one_tag_per_two_hops() {
        let ft = ft4();
        let p = FatTreeCherryPick::new(ft.clone());
        // Intra-pod 2-hop detour: tor(0,0) agg(0,0) tor(0,1)... say the
        // agg->tor(0,1) link failed after arrival: tor(0,0) agg(0,0)
        // tor(0,1)? No: bounce shape is tor-agg-tor-agg-tor.
        let path = [
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.tor(0, 1),
            ft.agg(0, 1),
            ft.tor(0, 1),
        ];
        let h = tags_for_walk(&p, &ft, &path);
        assert_eq!(h.tags, vec![p.ids().tor_agg(0, 0), p.ids().tor_agg(1, 1)]);
    }

    #[test]
    fn six_switches_would_push_three_tags() {
        let ft = ft4();
        let p = FatTreeCherryPick::new(ft.clone());
        // Inter-pod with a down-path bounce: 7 switches, pushes at 2,4,6.
        let path = [
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.core(0),
            ft.agg(1, 0),
            ft.tor(1, 0),
            ft.agg(1, 1),
            ft.tor(1, 1),
        ];
        let h = tags_for_walk(&p, &ft, &path);
        assert_eq!(h.tag_count(), 3, "the third tag is what triggers the punt");
    }

    #[test]
    fn vl2_shortest_uses_dscp_plus_one_vlan() {
        let v = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let p = Vl2CherryPick::new(v.clone());
        // ToR0 (aggs 0,1) -> int -> ToR1 (aggs 2,3).
        let path = [v.tor(0), v.agg(1), v.int(0), v.agg(2), v.tor(1)];
        let h = tags_for_walk(&p, &v, &path);
        assert_eq!(h.dscp_sample(), Some(1), "uplink slot 1 rides in DSCP");
        assert_eq!(h.tags, vec![p.ids().agg_int(0, 2)]);
    }

    #[test]
    fn vl2_shared_agg_path_uses_only_dscp() {
        let v = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let p = Vl2CherryPick::new(v.clone());
        // ToR0 and ToR2 share aggs (0,1).
        let path = [v.tor(0), v.agg(0), v.tor(2)];
        let h = tags_for_walk(&p, &v, &path);
        assert_eq!(h.dscp_sample(), Some(0));
        assert_eq!(h.tag_count(), 0);
    }

    #[test]
    fn vl2_detour_falls_back_to_vlan_for_tor_links() {
        let v = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let p = Vl2CherryPick::new(v.clone());
        // A bounce that crosses a second ToR uplink after DSCP is spent:
        // tor0 -> agg0 -> tor2 -> agg1 -> tor... (ToR2's slot for agg1?
        // ToR2 attaches aggs (0,1), so tor2->agg1 is slot 1.)
        let path = [v.tor(0), v.agg(0), v.tor(2), v.agg(1), v.tor(2)];
        let h = tags_for_walk(&p, &v, &path);
        assert_eq!(h.dscp_sample(), Some(0), "first sample in DSCP");
        assert_eq!(
            h.tags,
            vec![p.ids().tor_agg(2, 1)],
            "second ToR-link sample must use a VLAN tag"
        );
    }

    #[test]
    fn parity_resets_after_strip() {
        let ft = ft4();
        let p = FatTreeCherryPick::new(ft.clone());
        let path = [ft.tor(0, 0), ft.agg(0, 1), ft.tor(0, 1)];
        let mut h = tags_for_walk(&p, &ft, &path);
        h.strip();
        assert!(!h.parity());
        assert_eq!(h.tag_count(), 0);
    }

    #[test]
    fn all_shortest_paths_stay_within_two_tags() {
        let ft = FatTree::build(FatTreeParams { k: 8 });
        let p = FatTreeCherryPick::new(ft.clone());
        let hosts = [
            ft.host(0, 0, 0),
            ft.host(0, 1, 1),
            ft.host(3, 2, 0),
            ft.host(7, 3, 3),
        ];
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                for path in ft.all_paths(a, b) {
                    let h = tags_for_walk(&p, &ft, &path.0);
                    assert!(
                        h.tag_count() <= 2,
                        "shortest path {path} used {} tags",
                        h.tag_count()
                    );
                }
            }
        }
    }
}
