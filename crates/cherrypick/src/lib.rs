//! CherryPick: per-packet trajectory tracing with near-optimal header space
//! (§3.1 of the PathDump paper; originally SOSR'15 [36]).
//!
//! The pieces, bottom-up:
//! - [`ids`]: the 12-bit link-identifier spaces, shared across pods;
//! - [`policy`]: the switch-side sampling rules as a
//!   [`pathdump_simnet::TagPolicy`] — static rules only, no dynamic state;
//! - [`reconstruct`]: sampled link IDs + static topology → end-to-end path,
//!   including infeasibility detection (§2.4) and the controller-side
//!   search used for punted (≥3-tag) packets;
//! - [`cache`]: the per-host trajectory cache of Figure 2;
//! - [`rules`]: static rule-count accounting and the edge-coloring view of
//!   core-link ID assignment.

pub mod cache;
pub mod ids;
pub mod policy;
pub mod reconstruct;
pub mod rules;

pub use cache::{CacheKey, TrajectoryCache};
pub use ids::{FatTreeIds, FtTag, Vl2Ids, Vl2Tag};
pub use policy::{tags_for_walk, FatTreeCherryPick, Vl2CherryPick};
pub use reconstruct::{
    path_is_feasible, DecodeMemo, FatTreeReconstructor, ReconstructError, Vl2Reconstructor,
};
pub use rules::{fattree_rule_counts, pod_core_coloring, vl2_rule_counts, RuleCount};
