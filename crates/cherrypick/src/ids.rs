//! 12-bit link-identifier spaces (§3.1).
//!
//! "The number of physical links is far more than that of available link
//! IDs (4,096 unique link IDs expressed in a 12-bit VLAN identifier)" — so
//! CherryPick reuses IDs across pods for intra-pod links and compresses
//! core-link IDs via the structured wiring (equivalently, an edge coloring;
//! see [`crate::rules`] for the explicit coloring check).
//!
//! **Fat-tree** (parameter `k`, `half = k/2`):
//! - class A — ToR↔aggregate links, *pod-shared*: `id = tor_pos*half +
//!   agg_pos`, range `[0, half²)`;
//! - class B — aggregate↔core links, *pod-shared*: `id = half² + core_index`
//!   (the core index `j = agg_pos*half + offset` already encodes the
//!   aggregate position, which is the edge-coloring observation), range
//!   `[half², 2·half²)`.
//!
//! `2·half² ≤ 4096` bounds `k ≤ 90`, matching the paper's "72-port
//! switches, about 93K servers" envelope.
//!
//! **VL2** (`DA`, `DI`): the first sample (source ToR uplink) rides in the
//! DSCP field as the uplink slot; VLAN IDs cover ToR–aggregate links
//! globally (`id = tor*2 + slot`) and aggregate–intermediate links globally
//! (`id = 2·#tors + int*#aggs + agg`). At the paper's 62-port envelope this
//! is `1922 + 1922 = 3844 ≤ 4096`.

use pathdump_topology::{FatTree, SwitchId, Tier, Vl2};
use serde::{Deserialize, Serialize};

/// A decoded fat-tree link tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FtTag {
    /// ToR↔aggregate link at `(tor_pos, agg_pos)` within some pod.
    TorAgg {
        /// ToR position in its pod.
        tor_pos: usize,
        /// Aggregate position in its pod.
        agg_pos: usize,
    },
    /// Aggregate↔core link identified by the core index.
    AggCore {
        /// Global core index `j`.
        core_index: usize,
    },
}

/// Fat-tree link-ID codec.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FatTreeIds {
    half: usize,
}

impl FatTreeIds {
    /// Builds the codec for a `k`-ary fat-tree.
    ///
    /// # Panics
    ///
    /// Panics if the ID space exceeds 12 bits.
    pub fn new(k: usize) -> Self {
        let half = k / 2;
        assert!(
            2 * half * half <= 4096,
            "fat-tree k={k} exceeds the 12-bit link-ID budget"
        );
        FatTreeIds { half }
    }

    /// Codec for an existing topology.
    pub fn for_topology(ft: &FatTree) -> Self {
        Self::new(ft.k())
    }

    /// Class-A ID of the ToR↔aggregate link `(tor_pos, agg_pos)`.
    pub fn tor_agg(&self, tor_pos: usize, agg_pos: usize) -> u16 {
        debug_assert!(tor_pos < self.half && agg_pos < self.half);
        (tor_pos * self.half + agg_pos) as u16
    }

    /// Class-B ID of the aggregate↔core link reaching core `core_index`.
    pub fn agg_core(&self, core_index: usize) -> u16 {
        debug_assert!(core_index < self.half * self.half);
        (self.half * self.half + core_index) as u16
    }

    /// Decodes a tag value.
    pub fn classify(&self, tag: u16) -> Option<FtTag> {
        let t = tag as usize;
        let sq = self.half * self.half;
        if t < sq {
            Some(FtTag::TorAgg {
                tor_pos: t / self.half,
                agg_pos: t % self.half,
            })
        } else if t < 2 * sq {
            Some(FtTag::AggCore { core_index: t - sq })
        } else {
            None
        }
    }

    /// The tag a switch pushes for its ingress link `from -> to`, or `None`
    /// when the pair is not a fabric link (e.g. a host port peer).
    ///
    /// The ID is direction-independent (it names the undirected link); the
    /// decoder infers direction from walk position.
    pub fn ingress_tag(&self, ft: &FatTree, from: SwitchId, to: SwitchId) -> Option<u16> {
        let (ft_from, _, pos_from) = ft.coords(from);
        let (ft_to, _, pos_to) = ft.coords(to);
        match (ft_from, ft_to) {
            (Tier::Tor, Tier::Agg) => Some(self.tor_agg(pos_from, pos_to)),
            (Tier::Agg, Tier::Tor) => Some(self.tor_agg(pos_to, pos_from)),
            (Tier::Agg, Tier::Core) => Some(self.agg_core(pos_to)),
            (Tier::Core, Tier::Agg) => Some(self.agg_core(pos_from)),
            _ => None,
        }
    }
}

/// A decoded VL2 VLAN tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vl2Tag {
    /// ToR↔aggregate link: ToR index and uplink slot.
    TorAgg {
        /// ToR index.
        tor: usize,
        /// Uplink slot (0 or 1).
        slot: usize,
    },
    /// Aggregate↔intermediate link.
    AggInt {
        /// Intermediate index.
        int: usize,
        /// Aggregate index.
        agg: usize,
    },
}

/// VL2 link-ID codec.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Vl2Ids {
    nt: usize,
    na: usize,
    ni: usize,
}

impl Vl2Ids {
    /// Builds the codec for a VL2 network.
    ///
    /// # Panics
    ///
    /// Panics if the ID space exceeds 12 bits.
    pub fn for_topology(v: &Vl2) -> Self {
        let p = v.params();
        let (nt, na, ni) = (p.num_tors(), p.num_aggs(), p.num_ints());
        assert!(
            2 * nt + na * ni <= 4096,
            "VL2 ({} ToRs, {} aggs, {} ints) exceeds the 12-bit link-ID budget",
            nt,
            na,
            ni
        );
        Vl2Ids { nt, na, ni }
    }

    /// VLAN ID of the ToR↔aggregate link at `(tor, slot)`.
    pub fn tor_agg(&self, tor: usize, slot: usize) -> u16 {
        debug_assert!(tor < self.nt && slot < 2);
        (tor * 2 + slot) as u16
    }

    /// VLAN ID of the aggregate↔intermediate link `(int, agg)`.
    pub fn agg_int(&self, int: usize, agg: usize) -> u16 {
        debug_assert!(int < self.ni && agg < self.na);
        (2 * self.nt + int * self.na + agg) as u16
    }

    /// Decodes a VLAN tag value.
    pub fn classify(&self, tag: u16) -> Option<Vl2Tag> {
        let t = tag as usize;
        if t < 2 * self.nt {
            Some(Vl2Tag::TorAgg {
                tor: t / 2,
                slot: t % 2,
            })
        } else if t < 2 * self.nt + self.na * self.ni {
            let r = t - 2 * self.nt;
            Some(Vl2Tag::AggInt {
                int: r / self.na,
                agg: r % self.na,
            })
        } else {
            None
        }
    }

    /// The VLAN tag for ingress link `from -> to`, or `None` for host links.
    pub fn ingress_tag(&self, v: &Vl2, from: SwitchId, to: SwitchId) -> Option<u16> {
        let (t_from, p_from) = v.coords(from);
        let (t_to, p_to) = v.coords(to);
        match (t_from, t_to) {
            (Tier::Tor, Tier::Agg) => Some(self.tor_agg(p_from, self.slot_of(v, p_from, p_to)?)),
            (Tier::Agg, Tier::Tor) => Some(self.tor_agg(p_to, self.slot_of(v, p_to, p_from)?)),
            (Tier::Agg, Tier::Core) => Some(self.agg_int(p_to, p_from)),
            (Tier::Core, Tier::Agg) => Some(self.agg_int(p_from, p_to)),
            _ => None,
        }
    }

    /// Which uplink slot of `tor` leads to aggregate `agg`.
    pub fn slot_of(&self, v: &Vl2, tor: usize, agg: usize) -> Option<usize> {
        let (a1, a2) = v.tor_aggs(tor);
        if agg == a1 {
            Some(0)
        } else if agg == a2 {
            Some(1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FatTreeParams, Vl2Params};

    #[test]
    fn fattree_class_ranges_disjoint() {
        let ids = FatTreeIds::new(8);
        // half = 4: class A in [0,16), class B in [16,32).
        assert_eq!(ids.tor_agg(0, 0), 0);
        assert_eq!(ids.tor_agg(3, 3), 15);
        assert_eq!(ids.agg_core(0), 16);
        assert_eq!(ids.agg_core(15), 31);
    }

    #[test]
    fn fattree_classify_roundtrip() {
        let ids = FatTreeIds::new(8);
        for t in 0..4 {
            for a in 0..4 {
                match ids.classify(ids.tor_agg(t, a)) {
                    Some(FtTag::TorAgg { tor_pos, agg_pos }) => {
                        assert_eq!((tor_pos, agg_pos), (t, a));
                    }
                    other => panic!("bad classify: {other:?}"),
                }
            }
        }
        for j in 0..16 {
            assert_eq!(
                ids.classify(ids.agg_core(j)),
                Some(FtTag::AggCore { core_index: j })
            );
        }
        assert_eq!(ids.classify(32), None);
        assert_eq!(ids.classify(4095), None);
    }

    #[test]
    fn fattree_budget_bound() {
        // k=90 fits; k=92 must panic.
        let _ = FatTreeIds::new(90);
        let r = std::panic::catch_unwind(|| FatTreeIds::new(92));
        assert!(r.is_err());
    }

    #[test]
    fn fattree_ingress_tags() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let ids = FatTreeIds::for_topology(&ft);
        // tor(0,1) <-> agg(0,0): class A (1, 0), same both directions.
        let a = ids.ingress_tag(&ft, ft.tor(0, 1), ft.agg(0, 0)).unwrap();
        let b = ids.ingress_tag(&ft, ft.agg(0, 0), ft.tor(0, 1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ids.classify(a),
            Some(FtTag::TorAgg {
                tor_pos: 1,
                agg_pos: 0
            })
        );
        // agg(2,1) <-> core(3): class B with core index 3.
        let c = ids.ingress_tag(&ft, ft.agg(2, 1), ft.core(3)).unwrap();
        assert_eq!(ids.classify(c), Some(FtTag::AggCore { core_index: 3 }));
        // Pod-sharing: the same positions in another pod give the same ID.
        let a2 = ids.ingress_tag(&ft, ft.tor(3, 1), ft.agg(3, 0)).unwrap();
        assert_eq!(a, a2);
        // Core links are NOT pod-shared in value (same core = same ID).
        let c2 = ids.ingress_tag(&ft, ft.agg(0, 1), ft.core(3)).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn vl2_ids_roundtrip() {
        let v = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let ids = Vl2Ids::for_topology(&v);
        assert_eq!(
            ids.classify(ids.tor_agg(3, 1)),
            Some(Vl2Tag::TorAgg { tor: 3, slot: 1 })
        );
        assert_eq!(
            ids.classify(ids.agg_int(1, 2)),
            Some(Vl2Tag::AggInt { int: 1, agg: 2 })
        );
        assert_eq!(ids.classify(4000), None);
    }

    #[test]
    fn vl2_ingress_tags_direction_free() {
        let v = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let ids = Vl2Ids::for_topology(&v);
        let (a1, _) = v.tor_aggs(2);
        let x = ids.ingress_tag(&v, v.tor(2), v.agg(a1)).unwrap();
        let y = ids.ingress_tag(&v, v.agg(a1), v.tor(2)).unwrap();
        assert_eq!(x, y);
        assert_eq!(ids.classify(x), Some(Vl2Tag::TorAgg { tor: 2, slot: 0 }));
        let i = ids.ingress_tag(&v, v.agg(0), v.int(1)).unwrap();
        assert_eq!(ids.classify(i), Some(Vl2Tag::AggInt { int: 1, agg: 0 }));
    }

    #[test]
    fn vl2_paper_envelope_fits() {
        // 62-port VL2: 961 ToRs, 62 aggs, 31 ints.
        let p = Vl2Params {
            da: 62,
            di: 62,
            hosts_per_tor: 20,
        };
        assert!(2 * p.num_tors() + p.num_aggs() * p.num_ints() <= 4096);
    }
}
