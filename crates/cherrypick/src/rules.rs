//! Data-plane resource accounting: the static rules CherryPick installs and
//! the edge-coloring view of core-link ID assignment.
//!
//! The paper's claims checked here:
//! - "The number of rules at switch grows linearly over switch port
//!   density" (fat-tree);
//! - "We need two rules per ingress port ... thus still keeping low switch
//!   rule overheads" (VL2);
//! - core-link IDs can be assigned by edge coloring [13] so that pods share
//!   a small ID space.

use pathdump_topology::coloring::verify_coloring;
use pathdump_topology::{color_bipartite_multigraph, FatTree, SwitchId, UpDownRouting, Vl2};

/// Static tagging-rule footprint of one switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleCount {
    /// Rules that flip parity / push the ingress-link ID (two per
    /// switch-facing ingress port: parity 0 and parity 1).
    pub tagging: usize,
    /// The table-miss rule punting ≥3-tag packets to the controller.
    pub punt: usize,
}

impl RuleCount {
    /// Total rules attributable to PathDump on this switch.
    pub fn total(&self) -> usize {
        self.tagging + self.punt
    }
}

/// Tagging-rule footprint for every switch of a fat-tree.
pub fn fattree_rule_counts(ft: &FatTree) -> Vec<(SwitchId, RuleCount)> {
    ft.topology()
        .switches
        .iter()
        .map(|sw| {
            let switch_facing = sw
                .ports
                .iter()
                .filter(|p| matches!(p, pathdump_topology::Peer::Switch { .. }))
                .count();
            (
                sw.id,
                RuleCount {
                    tagging: 2 * switch_facing,
                    punt: 1,
                },
            )
        })
        .collect()
}

/// Tagging-rule footprint for every switch of a VL2 network.
pub fn vl2_rule_counts(v: &Vl2) -> Vec<(SwitchId, RuleCount)> {
    v.topology()
        .switches
        .iter()
        .map(|sw| {
            let switch_facing = sw
                .ports
                .iter()
                .filter(|p| matches!(p, pathdump_topology::Peer::Switch { .. }))
                .count();
            (
                sw.id,
                RuleCount {
                    tagging: 2 * switch_facing,
                    punt: 1,
                },
            )
        })
        .collect()
}

/// Runs the real bipartite edge-coloring over one pod's aggregate↔core
/// links and verifies it is proper with exactly `k/2` colors — the formal
/// justification for sharing the per-pod core-link ID space (§3.1).
///
/// Returns the colors indexed by (agg position, core offset).
pub fn pod_core_coloring(ft: &FatTree) -> Vec<Vec<u32>> {
    let half = ft.half();
    // Left vertices: aggregate positions; right: cores. Every aggregate
    // position a links to cores a*half..a*half+half.
    let mut edges = Vec::new();
    for a in 0..half {
        for c in 0..half {
            edges.push((a, ft.core_index(a, c)));
        }
    }
    let colors = color_bipartite_multigraph(half, half * half, &edges);
    verify_coloring(half, half * half, &edges, &colors).expect("coloring must be proper");
    let mut by_pos = vec![vec![0u32; half]; half];
    for (i, &(a, j)) in edges.iter().enumerate() {
        by_pos[a][j % half] = colors[i];
    }
    by_pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FatTreeParams, Tier, Vl2Params};

    #[test]
    fn fattree_rules_linear_in_ports() {
        for k in [4usize, 8, 16] {
            let ft = FatTree::build(FatTreeParams { k: k as u16 });
            let counts = fattree_rule_counts(&ft);
            for (sw, rc) in counts {
                let (tier, _, _) = ft.coords(sw);
                let expected_ports = match tier {
                    Tier::Tor => k / 2, // agg-facing only
                    Tier::Agg => k,     // ToR- and core-facing
                    Tier::Core => k,    // all agg-facing
                };
                assert_eq!(rc.tagging, 2 * expected_ports, "{sw} at k={k}");
                assert_eq!(rc.punt, 1);
                // Linear in port density: never more than 2k + 1.
                assert!(rc.total() <= 2 * k + 1);
            }
        }
    }

    #[test]
    fn vl2_two_rules_per_ingress_port() {
        let v = Vl2::build(Vl2Params {
            da: 8,
            di: 4,
            hosts_per_tor: 2,
        });
        for (sw, rc) in vl2_rule_counts(&v) {
            let switch_facing = v.topology().switch_neighbors(sw).len();
            assert_eq!(rc.tagging, 2 * switch_facing);
        }
    }

    #[test]
    fn pod_coloring_uses_half_colors() {
        let ft = FatTree::build(FatTreeParams { k: 8 });
        let colors = pod_core_coloring(&ft);
        let half = ft.half();
        // Each aggregate position sees `half` distinct colors.
        for row in &colors {
            let mut seen: Vec<u32> = row.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), half);
            assert!(row.iter().all(|&c| (c as usize) < half));
        }
    }

    #[test]
    fn total_footprint_small() {
        // Sanity: PathDump's rule footprint on a k=4 fat-tree is tens of
        // rules per switch, far below commodity TCAM sizes.
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let total: usize = fattree_rule_counts(&ft)
            .iter()
            .map(|(_, rc)| rc.total())
            .sum();
        assert!(total < 20 * ft.topology().num_switches());
    }
}
