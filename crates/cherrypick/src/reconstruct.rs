//! Path reconstruction: sampled link IDs + static topology → end-to-end
//! switch path (§3.2 "trajectory construction").
//!
//! Delivered packets carry at most two VLAN tags (plus VL2's DSCP sample);
//! those decode through closed-form case analysis. Packets with three or
//! more tags only exist on the controller slow path (punts), where the
//! general [`search`](FatTreeReconstructor::search_walk) recovers every
//! trajectory consistent with the samples.
//!
//! Reconstruction also implements the §2.4 safety net: a tag combination
//! that is topologically infeasible (a switch inserted a wrong ID) is
//! reported as [`ReconstructError::Inconsistent`] rather than silently
//! decoded, because "PathDump continually compares the extracted packet
//! trajectory to the ground truth (network topology)".

use crate::ids::{FatTreeIds, FtTag, Vl2Ids, Vl2Tag};
use pathdump_simnet::TagHeaders;
use pathdump_topology::{
    FatTree, FnvBuild, HostId, Path, Peer, SwitchId, Tier, UpDownRouting, Vl2,
};
use std::collections::HashMap;
use std::fmt;

/// Why a trajectory could not be reconstructed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReconstructError {
    /// The tag set cannot describe a complete path for this host pair.
    Incomplete,
    /// A tag value outside every defined ID range.
    InvalidTag(u16),
    /// The tags are well-formed but topologically infeasible — the §2.4
    /// "switch inserted an incorrect switchID" alarm.
    Inconsistent(&'static str),
    /// Slow-path search found no consistent walk.
    NoMatch,
    /// Slow-path search found more than one consistent walk.
    Ambiguous(usize),
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Incomplete => write!(f, "tag set incomplete for host pair"),
            ReconstructError::InvalidTag(t) => write!(f, "tag {t} outside all ID ranges"),
            ReconstructError::Inconsistent(why) => {
                write!(f, "topologically infeasible trajectory: {why}")
            }
            ReconstructError::NoMatch => write!(f, "no walk consistent with samples"),
            ReconstructError::Ambiguous(n) => write!(f, "{n} walks consistent with samples"),
        }
    }
}

impl std::error::Error for ReconstructError {}

/// Memo key: exactly the decode inputs that determine the result. Both
/// reconstructors' outputs (paths *and* errors) are functions of the
/// endpoint ToRs, the DSCP sample, and the tag stack — host positions
/// within a rack never change the decoded switch walk.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct MemoKey {
    src_tor: SwitchId,
    dst_tor: SwitchId,
    dscp_sample: Option<u8>,
    tags: Vec<u16>,
}

/// Memoized trajectory decode: caches the full decode result — the
/// reconstructed walk on success, the [`ReconstructError`] otherwise —
/// per (source ToR, destination ToR, DSCP sample, tag-stack) shape, so
/// repeated decodes of the same shape reuse the precomputed walk instead
/// of re-running the case analysis or, for punted ≥3-tag stacks, the
/// candidate-walk search. Lookups are allocation-free (a reusable scratch
/// key) and return the path by reference.
///
/// One memo is valid for **one** topology: it caches whatever the
/// reconstructor it is used with computes. Feed it two different
/// topologies and the results blend; keep one memo per reconstructor
/// (the per-host agent does exactly that).
#[derive(Clone, Debug)]
pub struct DecodeMemo {
    map: HashMap<MemoKey, Result<Path, ReconstructError>, FnvBuild>,
    scratch: MemoKey,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for DecodeMemo {
    fn default() -> Self {
        DecodeMemo::new(1 << 16)
    }
}

impl DecodeMemo {
    /// Creates a memo bounded to `capacity` entries. The bound is
    /// generational: when full, the next insert flushes the whole memo
    /// (decode shapes are topology-bounded in practice, so a real
    /// deployment never flushes; the bound only defends against
    /// adversarial tag garbage).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memo capacity must be positive");
        DecodeMemo {
            map: HashMap::default(),
            scratch: MemoKey {
                src_tor: SwitchId(0),
                dst_tor: SwitchId(0),
                dscp_sample: None,
                tags: Vec::with_capacity(8),
            },
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every memoized decode (e.g. after a topology change).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks up the decode for a shape, computing and memoizing it on a
    /// miss. The hit path performs no heap allocation and hands the path
    /// back by reference.
    fn get_or_compute(
        &mut self,
        src_tor: SwitchId,
        dst_tor: SwitchId,
        dscp_sample: Option<u8>,
        tags: &[u16],
        compute: impl FnOnce() -> Result<Path, ReconstructError>,
    ) -> Result<&Path, ReconstructError> {
        self.scratch.src_tor = src_tor;
        self.scratch.dst_tor = dst_tor;
        self.scratch.dscp_sample = dscp_sample;
        self.scratch.tags.clear();
        self.scratch.tags.extend_from_slice(tags);
        if self.map.contains_key(&self.scratch) {
            self.hits += 1;
            return self.map[&self.scratch].as_ref().map_err(|&e| e);
        }
        self.misses += 1;
        let result = compute();
        if self.map.len() >= self.capacity {
            self.map.clear(); // generational flush, see `new`
        }
        self.map.insert(self.scratch.clone(), result);
        self.map[&self.scratch].as_ref().map_err(|&e| e)
    }
}

/// Fat-tree trajectory reconstructor.
#[derive(Clone, Debug)]
pub struct FatTreeReconstructor {
    ft: FatTree,
    ids: FatTreeIds,
}

impl FatTreeReconstructor {
    /// Builds a reconstructor for a topology.
    pub fn new(ft: FatTree) -> Self {
        let ids = FatTreeIds::for_topology(&ft);
        FatTreeReconstructor { ft, ids }
    }

    /// The topology in use.
    pub fn fattree(&self) -> &FatTree {
        &self.ft
    }

    /// Reconstructs the path of a packet delivered from `src` to `dst`
    /// carrying `headers`.
    pub fn reconstruct(
        &self,
        src: HostId,
        dst: HostId,
        headers: &TagHeaders,
    ) -> Result<Path, ReconstructError> {
        let (sp, st, _) = self.ft.host_coords(src);
        let (dp, dt, _) = self.ft.host_coords(dst);
        let tor_s = self.ft.tor(sp, st);
        let tor_d = self.ft.tor(dp, dt);
        let tags = &headers.tags;

        match tags.len() {
            0 => {
                if tor_s == tor_d {
                    Ok(Path::new(vec![tor_s]))
                } else {
                    Err(ReconstructError::Incomplete)
                }
            }
            1 => {
                let tag = self
                    .ids
                    .classify(tags[0])
                    .ok_or(ReconstructError::InvalidTag(tags[0]))?;
                match tag {
                    FtTag::TorAgg { tor_pos, agg_pos } => {
                        if tor_pos != st {
                            return Err(ReconstructError::Inconsistent(
                                "sampled ToR-Agg link does not start at the source ToR",
                            ));
                        }
                        if sp != dp {
                            return Err(ReconstructError::Incomplete);
                        }
                        if tor_s == tor_d {
                            return Err(ReconstructError::Inconsistent(
                                "intra-rack packet carries a link sample",
                            ));
                        }
                        Ok(Path::new(vec![tor_s, self.ft.agg(sp, agg_pos), tor_d]))
                    }
                    FtTag::AggCore { .. } => Err(ReconstructError::Inconsistent(
                        "core-link sample without the preceding ToR-link sample",
                    )),
                }
            }
            2 => {
                let t1 = self
                    .ids
                    .classify(tags[0])
                    .ok_or(ReconstructError::InvalidTag(tags[0]))?;
                let t2 = self
                    .ids
                    .classify(tags[1])
                    .ok_or(ReconstructError::InvalidTag(tags[1]))?;
                let FtTag::TorAgg {
                    tor_pos,
                    agg_pos: a1,
                } = t1
                else {
                    return Err(ReconstructError::Inconsistent(
                        "first sample must be the source ToR-Agg link",
                    ));
                };
                if tor_pos != st {
                    return Err(ReconstructError::Inconsistent(
                        "sampled ToR-Agg link does not start at the source ToR",
                    ));
                }
                let agg_s = self.ft.agg(sp, a1);
                match t2 {
                    FtTag::AggCore { core_index } => {
                        // Inter-pod (or core-turn) shape: ToR Agg Core Agg ToR.
                        if self.ft.core_agg_position(core_index) != a1 {
                            return Err(ReconstructError::Inconsistent(
                                "core is not wired to the sampled source aggregate",
                            ));
                        }
                        let agg_d = self.ft.agg(dp, a1);
                        Ok(Path::new(vec![
                            tor_s,
                            agg_s,
                            self.ft.core(core_index),
                            agg_d,
                            tor_d,
                        ]))
                    }
                    FtTag::TorAgg {
                        tor_pos: ty,
                        agg_pos: a2,
                    } => {
                        // Intra-pod 2-hop detour: ToR Agg ToR' Agg' ToR.
                        if sp != dp {
                            return Err(ReconstructError::Inconsistent(
                                "two intra-pod samples for an inter-pod packet",
                            ));
                        }
                        Ok(Path::new(vec![
                            tor_s,
                            agg_s,
                            self.ft.tor(sp, ty),
                            self.ft.agg(sp, a2),
                            tor_d,
                        ]))
                    }
                }
            }
            _ => {
                // Slow path (the ASIC would have punted such a packet): full
                // search anchored at both ToRs.
                let matches = self.search_walk(tor_s, tor_d, None, tags, 2 * tags.len() + 5);
                match matches.len() {
                    0 => Err(ReconstructError::NoMatch),
                    1 => Ok(matches.into_iter().next().expect("len checked")),
                    n => Err(ReconstructError::Ambiguous(n)),
                }
            }
        }
    }

    /// True when decoding this sample shape runs the candidate-walk
    /// search (the punted slow path, µs-scale) rather than closed-form
    /// case analysis (~20 ns — cheaper than any memo probe, so callers
    /// holding a [`DecodeMemo`] should only route shapes through it when
    /// this returns true).
    pub fn decode_uses_search(&self, _dscp_sample: Option<u8>, tags: &[u16]) -> bool {
        tags.len() >= 3
    }

    /// Memoized [`reconstruct`](Self::reconstruct): decodes through
    /// `memo`, reusing the precomputed walk (or error) for a previously
    /// seen (source ToR, destination ToR, tag-stack) shape. Hits are
    /// allocation-free and return the path by reference; only a miss runs
    /// the case analysis / candidate-walk search. Fat-tree decode never
    /// reads the DSCP sample, so shapes are keyed without it.
    pub fn reconstruct_memo<'m>(
        &self,
        memo: &'m mut DecodeMemo,
        src: HostId,
        dst: HostId,
        dscp_sample: Option<u8>,
        tags: &[u16],
    ) -> Result<&'m Path, ReconstructError> {
        let (sp, st, _) = self.ft.host_coords(src);
        let (dp, dt, _) = self.ft.host_coords(dst);
        let tor_s = self.ft.tor(sp, st);
        let tor_d = self.ft.tor(dp, dt);
        memo.get_or_compute(tor_s, tor_d, None, tags, || {
            let mut headers = TagHeaders {
                tags: tags.to_vec(),
                dscp: 0,
            };
            if let Some(s) = dscp_sample {
                headers.set_dscp_sample(s);
            }
            self.reconstruct(src, dst, &headers)
        })
    }

    /// Finds every walk from `start` to `end` consistent with the sample
    /// sequence under the parity rules (samples pinned at even positions),
    /// up to `max_switches` switches. Used for punted packets and for
    /// diagnosing infeasible trajectories.
    pub fn search_walk(
        &self,
        start: SwitchId,
        end: SwitchId,
        prev_of_end: Option<SwitchId>,
        tags: &[u16],
        max_switches: usize,
    ) -> Vec<Path> {
        let mut results = Vec::new();
        let mut walk = vec![start];
        self.dfs(
            end,
            prev_of_end,
            tags,
            max_switches,
            &mut walk,
            0,
            &mut results,
        );
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        end: SwitchId,
        prev_of_end: Option<SwitchId>,
        tags: &[u16],
        max_switches: usize,
        walk: &mut Vec<SwitchId>,
        consumed: usize,
        results: &mut Vec<Path>,
    ) {
        // Cap ambiguity detection; callers only distinguish 0/1/many.
        if results.len() >= 8 {
            return;
        }
        let cur = *walk.last().expect("walk never empty");
        let prev_ok =
            prev_of_end.is_none() || (walk.len() >= 2 && prev_of_end == Some(walk[walk.len() - 2]));
        if cur == end && consumed == tags.len() && prev_ok {
            results.push(Path::new(walk.clone()));
            // A longer extension could also end at `end`; keep searching
            // only if we could still consume samples (we cannot: all are
            // consumed and any 2 more hops would demand one more sample
            // only at even positions — a 2-hop extension consumes exactly
            // one more sample, so no unconsumed-extension exists). Stop.
            return;
        }
        if walk.len() >= max_switches {
            return;
        }
        let next_pos = walk.len() + 1; // 1-based position of the next switch
        for (_port, nb) in self.ft.topology().switch_neighbors(cur) {
            if next_pos.is_multiple_of(2) {
                // Even switch: its ingress link must match the next sample.
                if consumed >= tags.len() {
                    continue;
                }
                let expected = tags[consumed];
                match self.ids.ingress_tag(&self.ft, cur, nb) {
                    Some(tag) if tag == expected => {
                        walk.push(nb);
                        self.dfs(
                            end,
                            prev_of_end,
                            tags,
                            max_switches,
                            walk,
                            consumed + 1,
                            results,
                        );
                        walk.pop();
                    }
                    _ => {}
                }
            } else {
                walk.push(nb);
                self.dfs(
                    end,
                    prev_of_end,
                    tags,
                    max_switches,
                    walk,
                    consumed,
                    results,
                );
                walk.pop();
            }
        }
    }
}

/// VL2 trajectory reconstructor.
#[derive(Clone, Debug)]
pub struct Vl2Reconstructor {
    v: Vl2,
    ids: Vl2Ids,
}

impl Vl2Reconstructor {
    /// Builds a reconstructor for a topology.
    pub fn new(v: Vl2) -> Self {
        let ids = Vl2Ids::for_topology(&v);
        Vl2Reconstructor { v, ids }
    }

    /// The topology in use.
    pub fn vl2(&self) -> &Vl2 {
        &self.v
    }

    /// Reconstructs the path of a packet delivered from `src` to `dst`.
    pub fn reconstruct(
        &self,
        src: HostId,
        dst: HostId,
        headers: &TagHeaders,
    ) -> Result<Path, ReconstructError> {
        let (sr, _) = self.v.host_coords(src);
        let (dr, _) = self.v.host_coords(dst);
        let tor_s = self.v.tor(sr);
        let tor_d = self.v.tor(dr);
        let dscp = headers.dscp_sample();
        let tags = &headers.tags;

        match (dscp, tags.len()) {
            (None, 0) => {
                if tor_s == tor_d {
                    Ok(Path::new(vec![tor_s]))
                } else {
                    Err(ReconstructError::Incomplete)
                }
            }
            (None, _) => Err(ReconstructError::Inconsistent(
                "VLAN samples without the DSCP first sample",
            )),
            (Some(slot), 0) => {
                let agg = self.uplink_agg(sr, slot)?;
                if !self.v.topology().adjacent(agg, tor_d) {
                    return Err(ReconstructError::Inconsistent(
                        "sampled aggregate does not reach the destination ToR",
                    ));
                }
                Ok(Path::new(vec![tor_s, agg, tor_d]))
            }
            (Some(slot), 1) => {
                let agg_u = self.uplink_agg(sr, slot)?;
                let tag = self
                    .ids
                    .classify(tags[0])
                    .ok_or(ReconstructError::InvalidTag(tags[0]))?;
                match tag {
                    Vl2Tag::AggInt { int, agg } => {
                        // ToR AggU Int AggD ToR.
                        let int_sw = self.v.int(int);
                        let agg_d = self.v.agg(agg);
                        if !self.v.topology().adjacent(agg_d, tor_d) {
                            return Err(ReconstructError::Inconsistent(
                                "sampled down-aggregate does not reach the destination ToR",
                            ));
                        }
                        Ok(Path::new(vec![tor_s, agg_u, int_sw, agg_d, tor_d]))
                    }
                    Vl2Tag::TorAgg { tor, slot: s2 } => {
                        // ToR AggU ToR' AggX ToR (intra-"pod" 2-hop detour).
                        let tor_y = self.v.tor(tor);
                        if !self.v.topology().adjacent(agg_u, tor_y) {
                            return Err(ReconstructError::Inconsistent(
                                "bounce ToR not reachable from the first aggregate",
                            ));
                        }
                        let agg_x = self.uplink_agg(tor, s2 as u8)?;
                        if !self.v.topology().adjacent(agg_x, tor_d) {
                            return Err(ReconstructError::Inconsistent(
                                "final aggregate does not reach the destination ToR",
                            ));
                        }
                        Ok(Path::new(vec![tor_s, agg_u, tor_y, agg_x, tor_d]))
                    }
                }
            }
            (Some(_), _) => {
                let matches = self.search_walk(tor_s, tor_d, None, dscp, tags, 2 * tags.len() + 7);
                match matches.len() {
                    0 => Err(ReconstructError::NoMatch),
                    1 => Ok(matches.into_iter().next().expect("len checked")),
                    n => Err(ReconstructError::Ambiguous(n)),
                }
            }
        }
    }

    /// True when decoding this sample shape runs the candidate-walk
    /// search — see [`FatTreeReconstructor::decode_uses_search`]. For VL2
    /// the search kicks in at 2+ VLAN tags on top of a DSCP sample (a
    /// DSCP-less stack with tags is a cheap `Inconsistent`).
    pub fn decode_uses_search(&self, dscp_sample: Option<u8>, tags: &[u16]) -> bool {
        dscp_sample.is_some() && tags.len() >= 2
    }

    /// Memoized [`reconstruct`](Self::reconstruct) — see
    /// [`FatTreeReconstructor::reconstruct_memo`]. VL2 decode consumes the
    /// DSCP sample, so it is part of the shape key.
    pub fn reconstruct_memo<'m>(
        &self,
        memo: &'m mut DecodeMemo,
        src: HostId,
        dst: HostId,
        dscp_sample: Option<u8>,
        tags: &[u16],
    ) -> Result<&'m Path, ReconstructError> {
        let (sr, _) = self.v.host_coords(src);
        let (dr, _) = self.v.host_coords(dst);
        let tor_s = self.v.tor(sr);
        let tor_d = self.v.tor(dr);
        memo.get_or_compute(tor_s, tor_d, dscp_sample, tags, || {
            let mut headers = TagHeaders {
                tags: tags.to_vec(),
                dscp: 0,
            };
            if let Some(s) = dscp_sample {
                headers.set_dscp_sample(s);
            }
            self.reconstruct(src, dst, &headers)
        })
    }

    fn uplink_agg(&self, tor: usize, slot: u8) -> Result<SwitchId, ReconstructError> {
        let (a1, a2) = self.v.tor_aggs(tor);
        match slot {
            0 => Ok(self.v.agg(a1)),
            1 => Ok(self.v.agg(a2)),
            _ => Err(ReconstructError::Inconsistent("DSCP slot out of range")),
        }
    }

    /// Slow-path search mirroring the VL2 sampling rules (DSCP consumed by
    /// the first even switch whose ingress is a ToR uplink, VLANs after).
    pub fn search_walk(
        &self,
        start: SwitchId,
        end: SwitchId,
        prev_of_end: Option<SwitchId>,
        dscp: Option<u8>,
        tags: &[u16],
        max_switches: usize,
    ) -> Vec<Path> {
        let mut results = Vec::new();
        let mut walk = vec![start];
        self.dfs(
            end,
            prev_of_end,
            dscp,
            tags,
            max_switches,
            &mut walk,
            false,
            0,
            &mut results,
        );
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        end: SwitchId,
        prev_of_end: Option<SwitchId>,
        dscp: Option<u8>,
        tags: &[u16],
        max_switches: usize,
        walk: &mut Vec<SwitchId>,
        dscp_done: bool,
        consumed: usize,
        results: &mut Vec<Path>,
    ) {
        if results.len() >= 8 {
            return;
        }
        let cur = *walk.last().expect("walk never empty");
        let prev_ok =
            prev_of_end.is_none() || (walk.len() >= 2 && prev_of_end == Some(walk[walk.len() - 2]));
        if cur == end && consumed == tags.len() && (dscp.is_none() || dscp_done) && prev_ok {
            results.push(Path::new(walk.clone()));
            return;
        }
        if walk.len() >= max_switches {
            return;
        }
        let next_pos = walk.len() + 1;
        for (_port, nb) in self.v.topology().switch_neighbors(cur) {
            if next_pos.is_multiple_of(2) {
                // Mirror the policy: ToR->Agg ingress with DSCP unused
                // consumes the DSCP sample; everything else consumes a VLAN.
                let (cur_t, cur_p) = self.v.coords(cur);
                let (nb_t, _) = self.v.coords(nb);
                let takes_dscp = !dscp_done && cur_t == Tier::Tor && nb_t == Tier::Agg;
                if takes_dscp {
                    let Some(slot_val) = dscp else { continue };
                    let Ok(agg_sw) = self.uplink_agg(cur_p, slot_val) else {
                        continue;
                    };
                    if agg_sw != nb {
                        continue;
                    }
                    walk.push(nb);
                    self.dfs(
                        end,
                        prev_of_end,
                        dscp,
                        tags,
                        max_switches,
                        walk,
                        true,
                        consumed,
                        results,
                    );
                    walk.pop();
                } else {
                    if consumed >= tags.len() {
                        continue;
                    }
                    match self.ids.ingress_tag(&self.v, cur, nb) {
                        Some(tag) if tag == tags[consumed] => {
                            walk.push(nb);
                            self.dfs(
                                end,
                                prev_of_end,
                                dscp,
                                tags,
                                max_switches,
                                walk,
                                dscp_done,
                                consumed + 1,
                                results,
                            );
                            walk.pop();
                        }
                        _ => {}
                    }
                }
            } else {
                walk.push(nb);
                self.dfs(
                    end,
                    prev_of_end,
                    dscp,
                    tags,
                    max_switches,
                    walk,
                    dscp_done,
                    consumed,
                    results,
                );
                walk.pop();
            }
        }
    }
}

/// Checks a reconstructed path against a topology: contiguous walk with the
/// right endpoints (used by tests and by the wrong-switch-ID detector).
pub fn path_is_feasible(
    topo: &pathdump_topology::Topology,
    src: HostId,
    dst: HostId,
    path: &Path,
) -> bool {
    let (Some(first), Some(last)) = (path.first(), path.last()) else {
        return false;
    };
    if topo.host(src).tor != first || topo.host(dst).tor != last {
        return false;
    }
    if !path.links().all(|l| topo.adjacent(l.from, l.to)) {
        return false;
    }
    // Endpoints must actually be host-bearing ToRs for these hosts.
    matches!(topo.peer(first, topo.host(src).tor_port), Peer::Host(h) if h == src)
        && matches!(topo.peer(last, topo.host(dst).tor_port), Peer::Host(h) if h == dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{tags_for_walk, FatTreeCherryPick, Vl2CherryPick};
    use pathdump_topology::{FatTreeParams, UpDownRouting, Vl2Params};

    fn ft4() -> FatTree {
        FatTree::build(FatTreeParams { k: 4 })
    }

    fn vl2s() -> Vl2 {
        Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        })
    }

    /// decode(encode(path)) == path for every shortest path of a k=4
    /// fat-tree, all host pairs.
    #[test]
    fn fattree_roundtrip_all_shortest_paths() {
        let ft = ft4();
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        for a in 0..16u32 {
            for b in 0..16u32 {
                if a == b {
                    continue;
                }
                let (src, dst) = (HostId(a), HostId(b));
                for path in ft.all_paths(src, dst) {
                    let headers = tags_for_walk(&policy, &ft, &path.0);
                    let decoded = recon
                        .reconstruct(src, dst, &headers)
                        .unwrap_or_else(|e| panic!("{path}: {e}"));
                    assert_eq!(decoded, path);
                }
            }
        }
    }

    #[test]
    fn fattree_roundtrip_k8_sample() {
        let ft = FatTree::build(FatTreeParams { k: 8 });
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        let hosts: Vec<HostId> = (0..128).step_by(7).map(HostId).collect();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                for path in ft.all_paths(src, dst) {
                    let headers = tags_for_walk(&policy, &ft, &path.0);
                    assert_eq!(recon.reconstruct(src, dst, &headers).unwrap(), path);
                }
            }
        }
    }

    #[test]
    fn fattree_intra_pod_detour_roundtrip() {
        let ft = ft4();
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        let (src, dst) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        let detour = Path::new(vec![
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.tor(0, 1),
            ft.agg(0, 1),
            ft.tor(0, 1),
        ]);
        let headers = tags_for_walk(&policy, &ft, &detour.0);
        assert_eq!(headers.tag_count(), 2);
        assert_eq!(recon.reconstruct(src, dst, &headers).unwrap(), detour);
    }

    #[test]
    fn fattree_wrong_id_detected() {
        let ft = ft4();
        let recon = FatTreeReconstructor::new(ft.clone());
        let ids = FatTreeIds::for_topology(&ft);
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        // A lying switch inserts a ToR-Agg sample for the wrong ToR
        // position: infeasible given srcIP (tor position 0).
        let mut h = TagHeaders::default();
        h.push_tag(ids.tor_agg(1, 0));
        h.push_tag(ids.agg_core(0));
        match recon.reconstruct(src, dst, &h) {
            Err(ReconstructError::Inconsistent(_)) => {}
            other => panic!("expected Inconsistent, got {other:?}"),
        }
        // Core sample inconsistent with the sampled aggregate position:
        // agg position 1 cannot reach core 0 (group 0).
        let mut h2 = TagHeaders::default();
        h2.push_tag(ids.tor_agg(0, 1));
        h2.push_tag(ids.agg_core(0));
        match recon.reconstruct(src, dst, &h2) {
            Err(ReconstructError::Inconsistent(_)) => {}
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn fattree_missing_tags_incomplete() {
        let ft = ft4();
        let recon = FatTreeReconstructor::new(ft.clone());
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let h = TagHeaders::default();
        assert_eq!(
            recon.reconstruct(src, dst, &h),
            Err(ReconstructError::Incomplete)
        );
    }

    #[test]
    fn fattree_invalid_tag_value() {
        let ft = ft4();
        let recon = FatTreeReconstructor::new(ft.clone());
        let (src, dst) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        let mut h = TagHeaders::default();
        h.push_tag(4000); // outside both classes for k=4 (ranges end at 8)
        assert_eq!(
            recon.reconstruct(src, dst, &h),
            Err(ReconstructError::InvalidTag(4000))
        );
    }

    #[test]
    fn fattree_search_decodes_three_tag_walk() {
        let ft = ft4();
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        // 7-switch walk with a down-path bounce (3 samples).
        let walk = vec![
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.core(0),
            ft.agg(1, 0),
            ft.tor(1, 0),
            ft.agg(1, 1),
            ft.tor(1, 1),
        ];
        let headers = tags_for_walk(&policy, &ft, &walk);
        assert_eq!(headers.tag_count(), 3);
        let found = recon.search_walk(ft.tor(0, 0), ft.tor(1, 1), None, &headers.tags, 9);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, walk);
    }

    #[test]
    fn fattree_search_detects_loops_in_tags() {
        let ft = ft4();
        let policy = FatTreeCherryPick::new(ft.clone());
        // Loop walk: agg(0,0)->core(0)->agg(1,0)->core(1)->agg(0,0) cycle
        // entered from tor(0,0). Repeated link IDs appear in the tags.
        let walk = vec![
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.core(0),
            ft.agg(1, 0),
            ft.core(1),
            ft.agg(0, 0),
            ft.core(0),
            ft.agg(1, 0),
        ];
        let headers = tags_for_walk(&policy, &ft, &walk);
        assert!(headers.tag_count() >= 3);
        // The Figure 9 check: some link ID repeats across the carried tags.
        let mut seen = std::collections::HashSet::new();
        let repeated = headers.tags.iter().any(|t| !seen.insert(*t));
        assert!(
            repeated,
            "loop must repeat a sampled link ID: {:?}",
            headers.tags
        );
    }

    #[test]
    fn vl2_roundtrip_all_shortest_paths() {
        let v = vl2s();
        let policy = Vl2CherryPick::new(v.clone());
        let recon = Vl2Reconstructor::new(v.clone());
        let n = v.topology().num_hosts() as u32;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (src, dst) = (HostId(a), HostId(b));
                for path in v.all_paths(src, dst) {
                    let headers = tags_for_walk(&policy, &v, &path.0);
                    let decoded = recon
                        .reconstruct(src, dst, &headers)
                        .unwrap_or_else(|e| panic!("{path}: {e}"));
                    assert_eq!(decoded, path);
                }
            }
        }
    }

    #[test]
    fn vl2_detour_roundtrip() {
        let v = vl2s();
        let policy = Vl2CherryPick::new(v.clone());
        let recon = Vl2Reconstructor::new(v.clone());
        // ToR0 -> agg0 -> ToR2 -> agg1 -> ToR2 bounce (both ToRs share aggs).
        let (src, dst) = (v.host(0, 0), v.host(2, 0));
        let walk = Path::new(vec![v.tor(0), v.agg(0), v.tor(2), v.agg(1), v.tor(2)]);
        let headers = tags_for_walk(&policy, &v, &walk.0);
        assert_eq!(recon.reconstruct(src, dst, &headers).unwrap(), walk);
    }

    #[test]
    fn vl2_wrong_id_detected() {
        let v = vl2s();
        let recon = Vl2Reconstructor::new(v.clone());
        let ids = Vl2Ids::for_topology(&v);
        // ToR0 (aggs 0,1) to ToR1 (aggs 2,3): claim the down-agg is agg 0,
        // which does not attach to ToR1.
        let (src, dst) = (v.host(0, 0), v.host(1, 0));
        let mut h = TagHeaders::default();
        h.set_dscp_sample(0);
        h.push_tag(ids.agg_int(0, 0));
        match recon.reconstruct(src, dst, &h) {
            Err(ReconstructError::Inconsistent(_)) => {}
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn vl2_vlan_without_dscp_is_inconsistent() {
        let v = vl2s();
        let recon = Vl2Reconstructor::new(v.clone());
        let ids = Vl2Ids::for_topology(&v);
        let (src, dst) = (v.host(0, 0), v.host(1, 0));
        let mut h = TagHeaders::default();
        h.push_tag(ids.agg_int(0, 2));
        match recon.reconstruct(src, dst, &h) {
            Err(ReconstructError::Inconsistent(_)) => {}
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn memo_reuses_walks_across_hosts_in_a_rack() {
        let ft = ft4();
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        let mut memo = DecodeMemo::new(64);
        // Two sources in the same rack, same path shape: one computation.
        let (src_a, src_b, dst) = (ft.host(0, 0, 0), ft.host(0, 0, 1), ft.host(1, 0, 0));
        let path = ft.all_paths(src_a, dst).remove(0);
        let headers = tags_for_walk(&policy, &ft, &path.0);
        for src in [src_a, src_b, src_a] {
            let got = recon
                .reconstruct_memo(&mut memo, src, dst, headers.dscp_sample(), &headers.tags)
                .unwrap();
            assert_eq!(*got, path);
        }
        assert_eq!(memo.stats(), (2, 1), "same rack + shape decodes once");
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn memo_caches_errors_too() {
        let ft = ft4();
        let recon = FatTreeReconstructor::new(ft.clone());
        let mut memo = DecodeMemo::default();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        for _ in 0..3 {
            assert_eq!(
                recon.reconstruct_memo(&mut memo, src, dst, None, &[]),
                Err(ReconstructError::Incomplete)
            );
        }
        assert_eq!(memo.stats(), (2, 1), "the error is memoized");
    }

    #[test]
    fn memo_generational_flush_keeps_answers_correct() {
        let ft = ft4();
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        let mut memo = DecodeMemo::new(2); // tiny: forces flushes
        for round in 0..3 {
            for a in 0..4u32 {
                let (src, dst) = (HostId(a), HostId((a + 5) % 16));
                for path in ft.all_paths(src, dst) {
                    let headers = tags_for_walk(&policy, &ft, &path.0);
                    let got = recon
                        .reconstruct_memo(&mut memo, src, dst, headers.dscp_sample(), &headers.tags)
                        .unwrap_or_else(|e| panic!("round {round}: {path}: {e}"));
                    assert_eq!(*got, path);
                }
            }
            assert!(memo.len() <= 2, "capacity bound holds");
        }
    }

    #[test]
    fn feasibility_checker() {
        let ft = ft4();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let good = ft.all_paths(src, dst).remove(0);
        assert!(path_is_feasible(ft.topology(), src, dst, &good));
        let bad = Path::new(vec![ft.tor(0, 0), ft.tor(1, 0)]);
        assert!(!path_is_feasible(ft.topology(), src, dst, &bad));
        let wrong_ends = Path::new(vec![ft.tor(3, 1)]);
        assert!(!path_is_feasible(ft.topology(), src, dst, &wrong_ends));
    }
}
