//! Bipartite multigraph edge coloring.
//!
//! CherryPick "efficiently assigns IDs to core links by applying an
//! edge-coloring technique" (§3.1, citing Cole–Ost–Schirra [13]). By Kőnig's
//! theorem a bipartite multigraph is edge-colorable with exactly Δ colors
//! (the maximum degree); two links sharing a switch never share a color, so
//! a color can serve as a locally-unambiguous link identifier.
//!
//! We implement the classic alternating-path (Kőnig) algorithm in `O(V · E)`
//! — far from the `O(E log Δ)` of [13], but exact and plenty fast for
//! datacenter-scale graphs (tens of thousands of links).

/// Colors the edges of a bipartite multigraph with Δ colors.
///
/// `left_n` and `right_n` are the sizes of the two vertex sets; `edges` is a
/// list of `(left, right)` pairs (parallel edges allowed). Returns one color
/// per edge, in input order, such that no two edges incident on the same
/// vertex share a color, using colors `0..Δ` where Δ is the maximum degree.
///
/// # Panics
///
/// Panics if an edge references a vertex out of range.
pub fn color_bipartite_multigraph(
    left_n: usize,
    right_n: usize,
    edges: &[(usize, usize)],
) -> Vec<u32> {
    for &(u, v) in edges {
        assert!(u < left_n, "left vertex {u} out of range");
        assert!(v < right_n, "right vertex {v} out of range");
    }
    let mut deg_l = vec![0usize; left_n];
    let mut deg_r = vec![0usize; right_n];
    for &(u, v) in edges {
        deg_l[u] += 1;
        deg_r[v] += 1;
    }
    let delta = deg_l.iter().chain(deg_r.iter()).copied().max().unwrap_or(0);
    // at_l[u][c] / at_r[v][c]: index of the color-c edge at the vertex, or
    // usize::MAX when the color is free there.
    let mut at_l = vec![vec![usize::MAX; delta]; left_n];
    let mut at_r = vec![vec![usize::MAX; delta]; right_n];
    let mut color = vec![u32::MAX; edges.len()];

    let free = |table: &[usize]| table.iter().position(|&e| e == usize::MAX);

    for (ei, &(u, v)) in edges.iter().enumerate() {
        let cu = free(&at_l[u]).expect("degree bound violated at left vertex");
        let cv = free(&at_r[v]).expect("degree bound violated at right vertex");
        if cu != cv {
            // cu is free at u but used at v (else cv <= cu would not be the
            // first free color... not exactly, but if cu were free at v we
            // can use it directly). If cu is also free at v, take cu with no
            // flip; otherwise flip the (cu, cv)-alternating path from v so
            // that cu becomes free at v. The path starts with v's cu-edge
            // and alternates cu/cv; it cannot end at u because cu is free at
            // u and the path would have to arrive at u via a cu-edge.
            if at_r[v][cu] != usize::MAX {
                flip_alternating(edges, &mut color, &mut at_l, &mut at_r, v, cu, cv);
            }
        }
        debug_assert_eq!(at_l[u][cu], usize::MAX, "cu must be free at u");
        debug_assert_eq!(at_r[v][cu], usize::MAX, "cu must be free at v after flip");
        color[ei] = cu as u32;
        at_l[u][cu] = ei;
        at_r[v][cu] = ei;
    }
    color
}

/// Flips the maximal (cu, cv)-alternating path that starts at right-vertex
/// `start`, so that color `cu` becomes free at `start`.
///
/// `cv` must be free at `start`. The path alternates cu, cv, cu, ... edges;
/// because every interior vertex has both colors present and the endpoints
/// have one free, it is a simple path, so swapping the two colors along it
/// keeps the coloring proper while freeing `cu` at `start`.
fn flip_alternating(
    edges: &[(usize, usize)],
    color: &mut [u32],
    at_l: &mut [Vec<usize>],
    at_r: &mut [Vec<usize>],
    start: usize,
    cu: usize,
    cv: usize,
) {
    let mut path = Vec::new();
    let mut side_right = true;
    let mut vertex = start;
    let mut want = cu;
    loop {
        let e = if side_right {
            at_r[vertex][want]
        } else {
            at_l[vertex][want]
        };
        if e == usize::MAX {
            break;
        }
        path.push(e);
        let (eu, ev) = edges[e];
        if side_right {
            vertex = eu;
            side_right = false;
        } else {
            vertex = ev;
            side_right = true;
        }
        want = if want == cu { cv } else { cu };
    }
    // Two-phase swap: clear all table entries on the path, then re-insert
    // with the opposite color. (A single pass would transiently collide.)
    for &e in &path {
        let (eu, ev) = edges[e];
        let old = color[e] as usize;
        at_l[eu][old] = usize::MAX;
        at_r[ev][old] = usize::MAX;
        color[e] = if old == cu { cv as u32 } else { cu as u32 };
    }
    for &e in &path {
        let (eu, ev) = edges[e];
        let new = color[e] as usize;
        at_l[eu][new] = e;
        at_r[ev][new] = e;
    }
}

/// Verifies that a coloring is proper: no two edges sharing an endpoint have
/// the same color. Returns the offending edge pair on failure.
pub fn verify_coloring(
    left_n: usize,
    right_n: usize,
    edges: &[(usize, usize)],
    colors: &[u32],
) -> Result<(), (usize, usize)> {
    let mut first_with: std::collections::HashMap<(bool, usize, u32), usize> =
        std::collections::HashMap::new();
    for (ei, (&(u, v), &c)) in edges.iter().zip(colors.iter()).enumerate() {
        assert!(u < left_n && v < right_n, "edge endpoint out of range");
        if let Some(&prev) = first_with.get(&(false, u, c)) {
            return Err((prev, ei));
        }
        if let Some(&prev) = first_with.get(&(true, v, c)) {
            return Err((prev, ei));
        }
        first_with.insert((false, u, c), ei);
        first_with.insert((true, v, c), ei);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(left: usize, right: usize, edges: &[(usize, usize)]) -> Vec<u32> {
        let colors = color_bipartite_multigraph(left, right, edges);
        assert_eq!(colors.len(), edges.len());
        verify_coloring(left, right, edges, &colors).expect("coloring must be proper");
        // Optimality: uses at most Delta colors.
        let mut deg = vec![0usize; left + right];
        for &(u, v) in edges {
            deg[u] += 1;
            deg[left + v] += 1;
        }
        let delta = deg.iter().copied().max().unwrap_or(0) as u32;
        for &c in &colors {
            assert!(c < delta.max(1), "color {c} exceeds Delta {delta}");
        }
        colors
    }

    #[test]
    fn empty_graph() {
        assert!(color_bipartite_multigraph(0, 0, &[]).is_empty());
    }

    #[test]
    fn single_edge() {
        assert_eq!(check(1, 1, &[(0, 0)]), vec![0]);
    }

    #[test]
    fn complete_bipartite_k33() {
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                edges.push((u, v));
            }
        }
        check(3, 3, &edges);
    }

    #[test]
    fn complete_bipartite_vl2_shape() {
        // VL2 aggregate x intermediate complete bipartite: 8 aggs, 4 ints.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in 0..4 {
                edges.push((u, v));
            }
        }
        check(8, 4, &edges);
    }

    #[test]
    fn parallel_edges() {
        // Multigraph: 3 parallel edges need 3 colors.
        let edges = [(0, 0), (0, 0), (0, 0)];
        let colors = check(1, 1, &edges);
        let mut sorted = colors.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn star_graphs() {
        // Fat-tree agg-core shape: each core attaches to exactly one agg
        // position: disjoint stars.
        let edges = [(0, 0), (0, 1), (1, 2), (1, 3)];
        check(2, 4, &edges);
    }

    #[test]
    fn cycle_forcing_flip() {
        // A 4-cycle ordered so that the greedy free colors differ and an
        // alternating-path flip is exercised.
        let edges = [(0, 0), (1, 0), (1, 1), (0, 1)];
        check(2, 2, &edges);
    }

    #[test]
    fn verify_rejects_bad_coloring() {
        let edges = [(0, 0), (0, 1)];
        assert_eq!(verify_coloring(1, 2, &edges, &[0, 0]), Err((0, 1)));
        assert!(verify_coloring(1, 2, &edges, &[0, 1]).is_ok());
    }

    #[test]
    fn random_graphs() {
        // Deterministic pseudo-random bipartite multigraphs (xorshift).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _trial in 0..100 {
            let left = 2 + (next() % 10) as usize;
            let right = 2 + (next() % 10) as usize;
            let m = 1 + (next() % 80) as usize;
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| {
                    (
                        (next() % left as u64) as usize,
                        (next() % right as u64) as usize,
                    )
                })
                .collect();
            check(left, right, &edges);
        }
    }
}
