//! The static network topology graph.
//!
//! Each PathDump edge device stores "a static view of the datacenter network
//! topology, including the statically assigned identifiers for each switch"
//! (§2.2). This module is that view: switches with tiers and ports, hosts
//! with addresses, and adjacency lookups used both by the simulator dataplane
//! and by trajectory reconstruction.

use crate::ids::{HostId, Ip, LinkDir, PortNo, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The tier a switch belongs to.
///
/// Fat-tree uses ToR ("edge"), aggregate, and core tiers; VL2 uses ToR,
/// aggregate, and intermediate — intermediates are represented as
/// [`Tier::Core`] since they play the same role (the turning point of
/// up–down routing).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Tier {
    /// Top-of-rack (edge) switch; hosts attach here.
    Tor,
    /// Aggregation switch.
    Agg,
    /// Core (fat-tree) or intermediate (VL2) switch.
    Core,
}

/// What sits at the far end of a switch port.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Peer {
    /// Another switch, reached through its `port`.
    Switch {
        /// Neighbor switch.
        sw: SwitchId,
        /// The neighbor's port on this link.
        port: PortNo,
    },
    /// An end-host NIC.
    Host(HostId),
    /// Nothing connected.
    Unconnected,
}

/// Static description of one switch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwitchMeta {
    /// Unique switch ID (also the index into [`Topology::switches`]).
    pub id: SwitchId,
    /// Tier of this switch.
    pub tier: Tier,
    /// Pod index for ToR/aggregate switches; `None` for core tier.
    pub pod: Option<u16>,
    /// Position of the switch within its tier (and pod, when applicable).
    pub pos: u16,
    /// Port table: `ports[i]` is the peer of port `i`.
    pub ports: Vec<Peer>,
}

impl SwitchMeta {
    /// Number of ports on the switch.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Returns the port leading to the given neighbor switch, if adjacent.
    pub fn port_towards(&self, neighbor: SwitchId) -> Option<PortNo> {
        self.ports
            .iter()
            .position(|p| match p {
                Peer::Switch { sw, .. } => *sw == neighbor,
                _ => false,
            })
            .map(|i| PortNo(i as u8))
    }

    /// Returns the port leading to the given host, if attached.
    pub fn port_towards_host(&self, host: HostId) -> Option<PortNo> {
        self.ports
            .iter()
            .position(|p| matches!(p, Peer::Host(h) if *h == host))
            .map(|i| PortNo(i as u8))
    }
}

/// Static description of one end-host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostMeta {
    /// Unique host ID (also the index into [`Topology::hosts`]).
    pub id: HostId,
    /// The host's IPv4 address.
    pub ip: Ip,
    /// The ToR switch the host attaches to.
    pub tor: SwitchId,
    /// The ToR port the host attaches to.
    pub tor_port: PortNo,
}

/// The static topology: switches, hosts, and adjacency.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All switches, indexed by [`SwitchId`].
    pub switches: Vec<SwitchMeta>,
    /// All hosts, indexed by [`HostId`].
    pub hosts: Vec<HostMeta>,
    /// Reverse index from IP address to host.
    ip_index: HashMap<Ip, HostId>,
}

impl Topology {
    /// Creates an empty topology (builders fill it in).
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a switch and returns its ID.
    pub fn add_switch(
        &mut self,
        tier: Tier,
        pod: Option<u16>,
        pos: u16,
        num_ports: usize,
    ) -> SwitchId {
        let id = SwitchId(self.switches.len() as u16);
        self.switches.push(SwitchMeta {
            id,
            tier,
            pod,
            pos,
            ports: vec![Peer::Unconnected; num_ports],
        });
        id
    }

    /// Adds a host attached to `tor` at `tor_port` and returns its ID.
    ///
    /// # Panics
    ///
    /// Panics if the IP address is already taken or the ToR port is occupied.
    pub fn add_host(&mut self, ip: Ip, tor: SwitchId, tor_port: PortNo) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        assert!(
            self.ip_index.insert(ip, id).is_none(),
            "duplicate IP address {ip}"
        );
        let sw = &mut self.switches[tor.index()];
        assert!(
            matches!(sw.ports[tor_port.index()], Peer::Unconnected),
            "ToR port already occupied"
        );
        sw.ports[tor_port.index()] = Peer::Host(id);
        self.hosts.push(HostMeta {
            id,
            ip,
            tor,
            tor_port,
        });
        id
    }

    /// Connects two switch ports bidirectionally.
    ///
    /// # Panics
    ///
    /// Panics if either port is already occupied.
    pub fn connect(&mut self, a: SwitchId, pa: PortNo, b: SwitchId, pb: PortNo) {
        assert!(
            matches!(
                self.switches[a.index()].ports[pa.index()],
                Peer::Unconnected
            ),
            "port {pa} of {a} already occupied"
        );
        assert!(
            matches!(
                self.switches[b.index()].ports[pb.index()],
                Peer::Unconnected
            ),
            "port {pb} of {b} already occupied"
        );
        self.switches[a.index()].ports[pa.index()] = Peer::Switch { sw: b, port: pb };
        self.switches[b.index()].ports[pb.index()] = Peer::Switch { sw: a, port: pa };
    }

    /// Returns the switch metadata.
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn switch(&self, id: SwitchId) -> &SwitchMeta {
        &self.switches[id.index()]
    }

    /// Returns the host metadata.
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn host(&self, id: HostId) -> &HostMeta {
        &self.hosts[id.index()]
    }

    /// Looks up a host by IP address.
    pub fn host_by_ip(&self, ip: Ip) -> Option<HostId> {
        self.ip_index.get(&ip).copied()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Returns the peer of a switch port.
    pub fn peer(&self, sw: SwitchId, port: PortNo) -> Peer {
        self.switches[sw.index()].ports[port.index()]
    }

    /// Returns true if two switches are directly connected.
    pub fn adjacent(&self, a: SwitchId, b: SwitchId) -> bool {
        self.switches[a.index()].port_towards(b).is_some()
    }

    /// Iterates over every undirected switch-to-switch link exactly once
    /// (canonical direction: lower switch ID first).
    pub fn links(&self) -> impl Iterator<Item = LinkDir> + '_ {
        self.switches.iter().flat_map(move |sw| {
            sw.ports.iter().filter_map(move |p| match p {
                Peer::Switch { sw: other, .. } if sw.id.0 < other.0 => {
                    Some(LinkDir::new(sw.id, *other))
                }
                _ => None,
            })
        })
    }

    /// All switch neighbors of `sw`, with the local port leading to each.
    pub fn switch_neighbors(&self, sw: SwitchId) -> Vec<(PortNo, SwitchId)> {
        self.switches[sw.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Peer::Switch { sw: other, .. } => Some((PortNo(i as u8), *other)),
                _ => None,
            })
            .collect()
    }

    /// All hosts attached to switch `sw`.
    pub fn attached_hosts(&self, sw: SwitchId) -> Vec<HostId> {
        self.switches[sw.index()]
            .ports
            .iter()
            .filter_map(|p| match p {
                Peer::Host(h) => Some(*h),
                _ => None,
            })
            .collect()
    }

    /// Checks structural invariants; returns a description of the first
    /// violation found, if any.
    ///
    /// Used by tests and by the builders' own sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        for (i, sw) in self.switches.iter().enumerate() {
            if sw.id.index() != i {
                return Err(format!("switch {i} has mismatched id {:?}", sw.id));
            }
            for (pi, peer) in sw.ports.iter().enumerate() {
                match peer {
                    Peer::Switch { sw: other, port } => {
                        let back = self
                            .switches
                            .get(other.index())
                            .ok_or_else(|| format!("{:?} points to missing {other:?}", sw.id))?;
                        match back.ports.get(port.index()) {
                            Some(Peer::Switch { sw: s2, port: p2 })
                                if *s2 == sw.id && p2.index() == pi => {}
                            _ => {
                                return Err(format!(
                                    "asymmetric link {:?}:{pi} -> {other:?}:{port}",
                                    sw.id
                                ))
                            }
                        }
                    }
                    Peer::Host(h) => {
                        let hm = self
                            .hosts
                            .get(h.index())
                            .ok_or_else(|| format!("{:?} points to missing {h:?}", sw.id))?;
                        if hm.tor != sw.id || hm.tor_port.index() != pi {
                            return Err(format!("host {h:?} back-pointer mismatch"));
                        }
                    }
                    Peer::Unconnected => {}
                }
            }
        }
        for (i, h) in self.hosts.iter().enumerate() {
            if h.id.index() != i {
                return Err(format!("host {i} has mismatched id {:?}", h.id));
            }
            if self.ip_index.get(&h.ip) != Some(&h.id) {
                return Err(format!("host {:?} missing from IP index", h.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // Two ToRs joined by one agg, one host per ToR.
        let mut t = Topology::new();
        let t0 = t.add_switch(Tier::Tor, Some(0), 0, 2);
        let t1 = t.add_switch(Tier::Tor, Some(0), 1, 2);
        let a0 = t.add_switch(Tier::Agg, Some(0), 0, 2);
        t.connect(t0, PortNo(1), a0, PortNo(0));
        t.connect(t1, PortNo(1), a0, PortNo(1));
        t.add_host(Ip::new(10, 0, 0, 2), t0, PortNo(0));
        t.add_host(Ip::new(10, 0, 1, 2), t1, PortNo(0));
        t
    }

    #[test]
    fn build_and_validate() {
        let t = tiny();
        assert!(t.validate().is_ok());
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_hosts(), 2);
    }

    #[test]
    fn adjacency_and_ports() {
        let t = tiny();
        let (t0, t1, a0) = (SwitchId(0), SwitchId(1), SwitchId(2));
        assert!(t.adjacent(t0, a0));
        assert!(!t.adjacent(t0, t1));
        assert_eq!(t.switch(t0).port_towards(a0), Some(PortNo(1)));
        assert_eq!(t.switch(a0).port_towards(t1), Some(PortNo(1)));
        assert_eq!(t.switch(t0).port_towards(t1), None);
    }

    #[test]
    fn host_lookup() {
        let t = tiny();
        let h = t.host_by_ip(Ip::new(10, 0, 1, 2)).unwrap();
        assert_eq!(t.host(h).tor, SwitchId(1));
        assert_eq!(t.host_by_ip(Ip::new(1, 2, 3, 4)), None);
        assert_eq!(t.switch(SwitchId(1)).port_towards_host(h), Some(PortNo(0)));
    }

    #[test]
    fn links_enumerated_once() {
        let t = tiny();
        let links: Vec<_> = t.links().collect();
        assert_eq!(links.len(), 2);
        for l in links {
            assert!(l.from.0 < l.to.0);
        }
    }

    #[test]
    fn attached_hosts_listed() {
        let t = tiny();
        assert_eq!(t.attached_hosts(SwitchId(0)), vec![HostId(0)]);
        assert!(t.attached_hosts(SwitchId(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate IP")]
    fn duplicate_ip_rejected() {
        let mut t = tiny();
        t.add_host(Ip::new(10, 0, 0, 2), SwitchId(1), PortNo(0));
    }

    #[test]
    fn validate_detects_asymmetry() {
        let mut t = tiny();
        // Corrupt one side of a link.
        t.switches[0].ports[1] = Peer::Switch {
            sw: SwitchId(2),
            port: PortNo(1),
        };
        assert!(t.validate().is_err());
    }
}
