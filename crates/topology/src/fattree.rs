//! K-ary fat-tree topology builder (Al-Fares et al.), the main evaluation
//! topology of the paper (§4 experiments use a 4-ary fat-tree).
//!
//! Structure for parameter `k` (even):
//! - `k` pods; each pod has `k/2` ToR switches and `k/2` aggregate switches;
//! - `(k/2)^2` core switches; core `j` (with `j = a*(k/2) + c`) connects to
//!   aggregate *position* `a` in **every** pod — so the identity of a core
//!   determines the aggregate position used in both the source and the
//!   destination pod, the observation CherryPick's fat-tree sampling relies
//!   on (§3.1);
//! - each ToR hosts `k/2` servers, for `k^3/4` total.
//!
//! Host addressing follows the fat-tree convention `10.pod.tor.(h+2)`.

use crate::graph::{Tier, Topology};
use crate::ids::{HostId, Ip, PortNo, SwitchId};
use crate::path::Path;
use crate::routing::UpDownRouting;
use serde::{Deserialize, Serialize};

/// Fat-tree build parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatTreeParams {
    /// Switch port count `k`. Must be even, `4 <= k <= 90` (the upper bound
    /// keeps CherryPick's pod-shared link IDs within the 12-bit VLAN space,
    /// matching the paper's "72-port switches, about 93K servers" envelope).
    pub k: u16,
}

impl FatTreeParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or out of the supported range.
    pub fn validate(self) {
        assert!(self.k >= 4, "fat-tree requires k >= 4");
        assert!(self.k.is_multiple_of(2), "fat-tree requires even k");
        assert!(self.k <= 90, "k > 90 exceeds the 12-bit link-ID budget");
    }
}

/// A built k-ary fat-tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FatTree {
    params: FatTreeParams,
    topo: Topology,
}

impl FatTree {
    /// Builds the fat-tree for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see [`FatTreeParams::validate`]).
    pub fn build(params: FatTreeParams) -> Self {
        params.validate();
        let k = params.k as usize;
        let half = k / 2;
        let mut topo = Topology::new();

        // Switch IDs are assigned in tier order: all ToRs, all aggs, cores.
        for p in 0..k {
            for t in 0..half {
                let id = topo.add_switch(Tier::Tor, Some(p as u16), t as u16, k);
                debug_assert_eq!(id.index(), p * half + t);
            }
        }
        for p in 0..k {
            for a in 0..half {
                let id = topo.add_switch(Tier::Agg, Some(p as u16), a as u16, k);
                debug_assert_eq!(id.index(), k * half + p * half + a);
            }
        }
        for j in 0..half * half {
            let id = topo.add_switch(Tier::Core, None, j as u16, k);
            debug_assert_eq!(id.index(), k * k + j);
        }

        let ft = |p: usize, t: usize| SwitchId((p * half + t) as u16);
        let fa = |p: usize, a: usize| SwitchId((k * half + p * half + a) as u16);
        let fc = |j: usize| SwitchId((k * k + j) as u16);

        // ToR <-> Agg: ToR t port (half + a) to Agg a port t.
        for p in 0..k {
            for t in 0..half {
                for a in 0..half {
                    topo.connect(
                        ft(p, t),
                        PortNo((half + a) as u8),
                        fa(p, a),
                        PortNo(t as u8),
                    );
                }
            }
        }
        // Agg <-> Core: Agg (p, a) port (half + c) to core j = a*half + c,
        // core port p.
        for p in 0..k {
            for a in 0..half {
                for c in 0..half {
                    let j = a * half + c;
                    topo.connect(fa(p, a), PortNo((half + c) as u8), fc(j), PortNo(p as u8));
                }
            }
        }
        // Hosts: ToR (p, t) ports 0..half, address 10.p.t.(h+2).
        for p in 0..k {
            for t in 0..half {
                for h in 0..half {
                    topo.add_host(
                        Ip::new(10, p as u8, t as u8, (h + 2) as u8),
                        ft(p, t),
                        PortNo(h as u8),
                    );
                }
            }
        }
        debug_assert!(topo.validate().is_ok());
        FatTree { params, topo }
    }

    /// The build parameters.
    pub fn params(&self) -> FatTreeParams {
        self.params
    }

    /// Port count `k`.
    pub fn k(&self) -> usize {
        self.params.k as usize
    }

    /// `k/2`: pods' per-tier width, hosts per ToR, core group size.
    pub fn half(&self) -> usize {
        self.k() / 2
    }

    /// Number of pods (= k).
    pub fn num_pods(&self) -> usize {
        self.k()
    }

    /// ToR switch at `(pod, position)`.
    pub fn tor(&self, pod: usize, t: usize) -> SwitchId {
        debug_assert!(pod < self.k() && t < self.half());
        SwitchId((pod * self.half() + t) as u16)
    }

    /// Aggregate switch at `(pod, position)`.
    pub fn agg(&self, pod: usize, a: usize) -> SwitchId {
        debug_assert!(pod < self.k() && a < self.half());
        SwitchId((self.k() * self.half() + pod * self.half() + a) as u16)
    }

    /// Core switch `j` (with `j = a*(k/2) + c`).
    pub fn core(&self, j: usize) -> SwitchId {
        debug_assert!(j < self.half() * self.half());
        SwitchId((self.k() * self.k() + j) as u16)
    }

    /// The aggregate position a core switch attaches to (in every pod).
    pub fn core_agg_position(&self, j: usize) -> usize {
        j / self.half()
    }

    /// The offset of core `j` within its aggregate's core group.
    pub fn core_offset(&self, j: usize) -> usize {
        j % self.half()
    }

    /// Core index for aggregate position `a`, offset `c`.
    pub fn core_index(&self, a: usize, c: usize) -> usize {
        a * self.half() + c
    }

    /// Decomposes a switch ID back into (tier, pod-or-0, position).
    pub fn coords(&self, sw: SwitchId) -> (Tier, usize, usize) {
        let k = self.k();
        let half = self.half();
        let i = sw.index();
        if i < k * half {
            (Tier::Tor, i / half, i % half)
        } else if i < k * k {
            let r = i - k * half;
            (Tier::Agg, r / half, r % half)
        } else {
            (Tier::Core, 0, i - k * k)
        }
    }

    /// Host at `(pod, tor, slot)`.
    pub fn host(&self, pod: usize, t: usize, h: usize) -> HostId {
        let half = self.half();
        debug_assert!(pod < self.k() && t < half && h < half);
        HostId((pod * half * half + t * half + h) as u32)
    }

    /// Decomposes a host ID into `(pod, tor, slot)`.
    pub fn host_coords(&self, host: HostId) -> (usize, usize, usize) {
        let half = self.half();
        let i = host.index();
        (i / (half * half), (i / half) % half, i % half)
    }

    /// Pod of a ToR or aggregate switch.
    ///
    /// # Panics
    ///
    /// Panics if called on a core switch.
    pub fn pod_of(&self, sw: SwitchId) -> usize {
        self.topo.switch(sw).pod.expect("core switches have no pod") as usize
    }
}

impl UpDownRouting for FatTree {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn candidates_to_tor(&self, sw: SwitchId, dst_tor: SwitchId) -> Vec<PortNo> {
        let half = self.half();
        let (d_pod, d_t) = {
            let (tier, pod, pos) = self.coords(dst_tor);
            debug_assert_eq!(tier, Tier::Tor);
            (pod, pos)
        };
        match self.coords(sw) {
            (Tier::Tor, _, _) if sw == dst_tor => vec![],
            (Tier::Tor, _, _) => (0..half).map(|a| PortNo((half + a) as u8)).collect(),
            (Tier::Agg, pod, _) if pod == d_pod => vec![PortNo(d_t as u8)],
            (Tier::Agg, _, _) => (0..half).map(|c| PortNo((half + c) as u8)).collect(),
            (Tier::Core, _, _) => vec![PortNo(d_pod as u8)],
        }
    }

    fn all_paths(&self, src: HostId, dst: HostId) -> Vec<Path> {
        let half = self.half();
        let (sp, st, _) = self.host_coords(src);
        let (dp, dt, _) = self.host_coords(dst);
        let (ts, td) = (self.tor(sp, st), self.tor(dp, dt));
        if src == dst {
            return vec![];
        }
        if ts == td {
            return vec![Path::new(vec![ts])];
        }
        if sp == dp {
            // Intra-pod: one path per aggregate.
            return (0..half)
                .map(|a| Path::new(vec![ts, self.agg(sp, a), td]))
                .collect();
        }
        // Inter-pod: one path per core; the aggregates are implied by the
        // core's group position.
        let mut paths = Vec::with_capacity(half * half);
        for a in 0..half {
            for c in 0..half {
                let j = self.core_index(a, c);
                paths.push(Path::new(vec![
                    ts,
                    self.agg(sp, a),
                    self.core(j),
                    self.agg(dp, a),
                    td,
                ]));
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::is_walk;

    fn ft4() -> FatTree {
        FatTree::build(FatTreeParams { k: 4 })
    }

    #[test]
    fn sizes_k4() {
        let ft = ft4();
        assert_eq!(ft.topology().num_switches(), 20);
        assert_eq!(ft.topology().num_hosts(), 16);
        assert_eq!(ft.topology().links().count(), 32);
    }

    #[test]
    fn sizes_k8() {
        let ft = FatTree::build(FatTreeParams { k: 8 });
        assert_eq!(ft.topology().num_switches(), 8 * 8 + 16);
        assert_eq!(ft.topology().num_hosts(), 128);
        assert!(ft.topology().validate().is_ok());
    }

    #[test]
    fn coords_roundtrip() {
        let ft = ft4();
        for p in 0..4 {
            for t in 0..2 {
                assert_eq!(ft.coords(ft.tor(p, t)), (Tier::Tor, p, t));
                assert_eq!(ft.coords(ft.agg(p, t)), (Tier::Agg, p, t));
            }
        }
        for j in 0..4 {
            assert_eq!(ft.coords(ft.core(j)), (Tier::Core, 0, j));
        }
        for h in 0..16 {
            let hid = HostId(h);
            let (p, t, s) = ft.host_coords(hid);
            assert_eq!(ft.host(p, t, s), hid);
        }
    }

    #[test]
    fn core_group_structure() {
        let ft = ft4();
        // Core j attaches to agg position j/half in every pod.
        for j in 0..4 {
            let a = ft.core_agg_position(j);
            for p in 0..4 {
                assert!(
                    ft.topology().adjacent(ft.core(j), ft.agg(p, a)),
                    "core {j} must reach agg position {a} in pod {p}"
                );
            }
            // And to no other aggregate position.
            let other = 1 - a;
            for p in 0..4 {
                assert!(!ft.topology().adjacent(ft.core(j), ft.agg(p, other)));
            }
        }
    }

    #[test]
    fn host_addresses() {
        let ft = ft4();
        let h = ft.host(2, 1, 0);
        assert_eq!(ft.topology().host(h).ip, Ip::new(10, 2, 1, 2));
        assert_eq!(ft.topology().host_by_ip(Ip::new(10, 2, 1, 2)), Some(h));
    }

    #[test]
    fn inter_pod_paths() {
        let ft = ft4();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let paths = ft.all_paths(src, dst);
        assert_eq!(paths.len(), 4, "k=4 gives (k/2)^2 = 4 inter-pod paths");
        let mut switches = std::collections::HashSet::new();
        for p in &paths {
            assert_eq!(p.num_hops(), 6);
            assert!(is_walk(ft.topology(), src, dst, p));
            switches.extend(p.0.iter().copied());
        }
        // The union of the 4 paths covers 10 switches (§4.4 blackhole text).
        assert_eq!(switches.len(), 10);
    }

    #[test]
    fn intra_pod_paths() {
        let ft = ft4();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        let paths = ft.all_paths(src, dst);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.num_hops(), 4);
            assert!(is_walk(ft.topology(), src, dst, p));
        }
    }

    #[test]
    fn same_tor_path() {
        let ft = ft4();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(0, 0, 1));
        let paths = ft.all_paths(src, dst);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].num_hops(), 2);
        assert!(ft.all_paths(src, src).is_empty());
    }

    #[test]
    fn candidates_follow_updown() {
        let ft = ft4();
        let dst = ft.host(3, 1, 1);
        let dtor = ft.tor(3, 1);
        // At a ToR in another pod: all k/2 agg uplinks.
        assert_eq!(ft.candidates_to_tor(ft.tor(0, 0), dtor).len(), 2);
        // At an agg in another pod: all k/2 core uplinks.
        assert_eq!(ft.candidates_to_tor(ft.agg(0, 1), dtor).len(), 2);
        // At a core: the single port toward pod 3.
        assert_eq!(ft.candidates_to_tor(ft.core(2), dtor), vec![PortNo(3)]);
        // At the destination pod's agg: the single ToR port.
        assert_eq!(ft.candidates_to_tor(ft.agg(3, 0), dtor), vec![PortNo(1)]);
        // Full host resolution at the destination ToR.
        assert_eq!(ft.candidates(dtor, dst), vec![PortNo(1)]);
    }

    #[test]
    fn shortest_hops_counts() {
        let ft = ft4();
        assert_eq!(ft.shortest_hops(ft.host(0, 0, 0), ft.host(0, 0, 1)), 2);
        assert_eq!(ft.shortest_hops(ft.host(0, 0, 0), ft.host(0, 1, 0)), 4);
        assert_eq!(ft.shortest_hops(ft.host(0, 0, 0), ft.host(2, 1, 0)), 6);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        FatTree::build(FatTreeParams { k: 5 });
    }
}
