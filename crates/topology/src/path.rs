//! Switch-level paths and the `Flow` (flowID, Path) pair of §2.1.

use crate::ids::{FlowId, LinkDir, SwitchId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `Path` is a list of switch IDs `<Si, Sj, ...>` (§2.1).
///
/// Host endpoints are implicit: the first switch is the source ToR and the
/// last is the destination ToR.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Path(pub Vec<SwitchId>);

impl Path {
    /// Builds a path from a switch list.
    pub fn new(switches: Vec<SwitchId>) -> Self {
        Path(switches)
    }

    /// Number of switches on the path.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns true if the path contains no switches.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of switch-to-switch links on the path.
    pub fn num_links(&self) -> usize {
        self.0.len().saturating_sub(1)
    }

    /// Number of hops as the paper counts them: switch-to-switch links plus
    /// the two host links (source NIC and destination NIC).
    ///
    /// An intra-pod ToR–Agg–ToR path is thus a "4-hop path" and an
    /// inter-pod fat-tree shortest path a "6-hop path".
    pub fn num_hops(&self) -> usize {
        if self.0.is_empty() {
            0
        } else {
            self.num_links() + 2
        }
    }

    /// Returns true if the path visits the given switch.
    pub fn contains(&self, sw: SwitchId) -> bool {
        self.0.contains(&sw)
    }

    /// Returns true if the path traverses the given directed link.
    pub fn traverses(&self, link: LinkDir) -> bool {
        self.links().any(|l| l == link)
    }

    /// Iterates over the directed switch-to-switch links along the path.
    pub fn links(&self) -> impl Iterator<Item = LinkDir> + '_ {
        self.0.windows(2).map(|w| LinkDir::new(w[0], w[1]))
    }

    /// The first switch (source ToR), if any.
    pub fn first(&self) -> Option<SwitchId> {
        self.0.first().copied()
    }

    /// The last switch (destination ToR), if any.
    pub fn last(&self) -> Option<SwitchId> {
        self.0.last().copied()
    }

    /// Returns true if some directed link appears more than once — the
    /// signature of a routing loop (§4.5).
    pub fn has_repeated_link(&self) -> bool {
        let links: Vec<LinkDir> = self.links().collect();
        for (i, a) in links.iter().enumerate() {
            if links[i + 1..].contains(a) {
                return true;
            }
        }
        false
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<SwitchId>> for Path {
    fn from(v: Vec<SwitchId>) -> Self {
        Path(v)
    }
}

/// A `Flow` is a `(flowID, Path)` pair; "this will be useful for cases when
/// packets from the same flowID may traverse along multiple Paths" (§2.1),
/// e.g. under packet spraying.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Flow {
    /// The 5-tuple.
    pub id: FlowId,
    /// One of the paths taken by packets of this flow.
    pub path: Path,
}

impl Flow {
    /// Builds a flow from its parts.
    pub fn new(id: FlowId, path: Path) -> Self {
        Flow { id, path }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Ip;

    fn p(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    #[test]
    fn hop_counting_matches_paper() {
        // Intra-pod ToR-Agg-ToR: "4-hop path".
        assert_eq!(p(&[0, 4, 1]).num_hops(), 4);
        // Inter-pod shortest: "6-hop path".
        assert_eq!(p(&[0, 4, 8, 6, 2]).num_hops(), 6);
        assert_eq!(p(&[]).num_hops(), 0);
        assert_eq!(p(&[3]).num_hops(), 2);
    }

    #[test]
    fn links_iteration() {
        let path = p(&[1, 2, 3]);
        let links: Vec<_> = path.links().collect();
        assert_eq!(
            links,
            vec![
                LinkDir::new(SwitchId(1), SwitchId(2)),
                LinkDir::new(SwitchId(2), SwitchId(3))
            ]
        );
        assert!(path.traverses(LinkDir::new(SwitchId(1), SwitchId(2))));
        assert!(!path.traverses(LinkDir::new(SwitchId(2), SwitchId(1))));
    }

    #[test]
    fn loop_detection_via_repeated_link() {
        assert!(!p(&[1, 2, 3, 4]).has_repeated_link());
        // S2->S3 appears twice: the Figure 9 signature.
        assert!(p(&[1, 2, 3, 4, 5, 2, 3]).has_repeated_link());
        // Revisiting a switch without repeating a directed link is not
        // flagged by this predicate (different link directions).
        assert!(!p(&[1, 2, 1]).has_repeated_link());
    }

    #[test]
    fn contains_and_endpoints() {
        let path = p(&[7, 8, 9]);
        assert!(path.contains(SwitchId(8)));
        assert!(!path.contains(SwitchId(10)));
        assert_eq!(path.first(), Some(SwitchId(7)));
        assert_eq!(path.last(), Some(SwitchId(9)));
    }

    #[test]
    fn flow_pair() {
        let id = FlowId::tcp(Ip::new(10, 0, 0, 2), 99, Ip::new(10, 1, 0, 2), 80);
        let f = Flow::new(id, p(&[1, 2]));
        assert_eq!(f.id, id);
        assert_eq!(f.path.len(), 2);
    }
}
