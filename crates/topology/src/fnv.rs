//! A fast FNV-1a-with-final-mix hasher for the per-packet hot paths
//! (trajectory memory, EMC, decode memo): the default SipHash costs more
//! than the rest of those paths combined, and their keys are not
//! attacker-controlled in this reproduction. Lives here so every edge
//! crate shares one implementation (topology is the root dependency).

use std::hash::{BuildHasherDefault, Hasher};

/// The hasher. Byte streams go through the classic per-byte FNV-1a loop;
/// word-sized writes — which is what derived `Hash` impls over ids, tags,
/// and flow fields emit — mix a whole word in one multiply. A murmur-style
/// final avalanche makes up for the coarser mixing (see [`ecmp_hash`] for
/// why raw FNV alone is too weak for bucket selection).
///
/// [`ecmp_hash`]: crate::ecmp_hash
#[derive(Default)]
pub struct FnvHasher(u64);

impl FnvHasher {
    #[inline]
    fn mix_word(&mut self, v: u64) {
        let h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        self.0 = (h ^ v).wrapping_mul(0x1000_0000_01b3);
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

/// Build-hasher alias for [`FnvHasher`].
pub type FnvBuild = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FnvHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        let hashes: Vec<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 1000, "no collisions on small dense inputs");
    }

    #[test]
    fn byte_stream_and_empty_input_hash() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(hash_of(&Vec::<u16>::new()), hash_of(&vec![0u16]));
    }
}
