//! Datacenter topology substrate for the PathDump reproduction.
//!
//! This crate provides the shared vocabulary of the whole workspace —
//! switch/host/port/link/flow identifiers, simulated-time types, switch-level
//! paths — together with builders for the two structured topologies the paper
//! evaluates on (**fat-tree** and **VL2**), up–down routing with ECMP and
//! per-packet spraying, and the bipartite edge-coloring used by CherryPick to
//! assign core-link identifiers (reference [13] of the paper).
//!
//! Everything here is "ground truth": the static view of the network that
//! each PathDump edge device stores (§2.2 of the paper) and that the
//! trajectory-construction module uses to turn sampled link IDs back into
//! end-to-end paths.

pub mod coloring;
pub mod fattree;
pub mod fnv;
pub mod graph;
pub mod ids;
pub mod path;
pub mod routing;
pub mod time;
pub mod vl2;

pub use coloring::color_bipartite_multigraph;
pub use fattree::{FatTree, FatTreeParams};
pub use fnv::{FnvBuild, FnvHasher};
pub use graph::{HostMeta, Peer, SwitchMeta, Tier, Topology};
pub use ids::{FlowId, HostId, Ip, LinkDir, LinkPattern, PortNo, Protocol, SwitchId};
pub use path::{Flow, Path};
pub use routing::{ecmp_hash, is_contiguous_walk, is_walk, RouteTables, UpDownRouting};
pub use time::{Nanos, TimeRange, MICROS, MILLIS, SECONDS};
pub use vl2::{Vl2, Vl2Params};
