//! Simulated time: nanosecond clock values and the paper's `timeRange`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One microsecond in nanoseconds.
pub const MICROS: u64 = 1_000;
/// One millisecond in nanoseconds.
pub const MILLIS: u64 = 1_000_000;
/// One second in nanoseconds.
pub const SECONDS: u64 = 1_000_000_000;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time (used as "never").
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * SECONDS)
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * MILLIS)
    }

    /// Builds a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * MICROS)
    }

    /// Returns the time as (truncated) whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / MILLIS
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECONDS as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, saturating at [`Nanos::MAX`].
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "t=inf");
        }
        let ns = self.0;
        if ns >= SECONDS {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= MILLIS {
            write!(f, "{:.3}ms", ns as f64 / MILLIS as f64)
        } else if ns >= MICROS {
            write!(f, "{:.3}us", ns as f64 / MICROS as f64)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The paper's `timeRange`: a pair of timestamps `<ti, tj>` with wildcard
/// support — `<ti, ?>` is interpreted as "since time ti" (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start; `None` means "since the beginning".
    pub start: Option<Nanos>,
    /// Inclusive end; `None` means "until now".
    pub end: Option<Nanos>,
}

impl TimeRange {
    /// The fully wildcarded range `<*, *>`.
    pub const ANY: TimeRange = TimeRange {
        start: None,
        end: None,
    };

    /// Builds the closed range `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn between(start: Nanos, end: Nanos) -> Self {
        assert!(start <= end, "TimeRange start must not exceed end");
        TimeRange {
            start: Some(start),
            end: Some(end),
        }
    }

    /// Builds the range `<ti, ?>` — everything since `start`.
    pub const fn since(start: Nanos) -> Self {
        TimeRange {
            start: Some(start),
            end: None,
        }
    }

    /// Builds the range `<?, tj>` — everything up to `end`.
    pub const fn until(end: Nanos) -> Self {
        TimeRange {
            start: None,
            end: Some(end),
        }
    }

    /// Returns true if instant `t` lies inside this range.
    pub fn contains(&self, t: Nanos) -> bool {
        self.start.is_none_or(|s| t >= s) && self.end.is_none_or(|e| t <= e)
    }

    /// Returns true if the record interval `[stime, etime]` overlaps the range.
    ///
    /// TIB records carry a start and end time; a record is relevant to a
    /// query when the two intervals intersect.
    pub fn overlaps(&self, stime: Nanos, etime: Nanos) -> bool {
        self.start.is_none_or(|s| etime >= s) && self.end.is_none_or(|e| stime <= e)
    }

    /// Intersects the record interval with this range, returning the clamped
    /// `[stime, etime]` or `None` when they do not overlap.
    pub fn clamp(&self, stime: Nanos, etime: Nanos) -> Option<(Nanos, Nanos)> {
        if !self.overlaps(stime, etime) {
            return None;
        }
        let s = self.start.map_or(stime, |s| s.max(stime));
        let e = self.end.map_or(etime, |e| e.min(etime));
        Some((s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Nanos::from_secs(2).0, 2 * SECONDS);
        assert_eq!(Nanos::from_millis(3).0, 3 * MILLIS);
        assert_eq!(Nanos::from_micros(5).0, 5 * MICROS);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", Nanos(2 * MILLIS)), "2.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(1)), "1.000s");
    }

    #[test]
    fn range_contains() {
        let r = TimeRange::between(Nanos(10), Nanos(20));
        assert!(!r.contains(Nanos(9)));
        assert!(r.contains(Nanos(10)));
        assert!(r.contains(Nanos(20)));
        assert!(!r.contains(Nanos(21)));
        assert!(TimeRange::ANY.contains(Nanos(0)));
        assert!(TimeRange::since(Nanos(5)).contains(Nanos(6)));
        assert!(!TimeRange::since(Nanos(5)).contains(Nanos(4)));
        assert!(TimeRange::until(Nanos(5)).contains(Nanos(4)));
        assert!(!TimeRange::until(Nanos(5)).contains(Nanos(6)));
    }

    #[test]
    fn range_overlap_and_clamp() {
        let r = TimeRange::between(Nanos(10), Nanos(20));
        assert!(r.overlaps(Nanos(0), Nanos(10)));
        assert!(r.overlaps(Nanos(20), Nanos(30)));
        assert!(!r.overlaps(Nanos(0), Nanos(9)));
        assert!(!r.overlaps(Nanos(21), Nanos(30)));
        assert_eq!(r.clamp(Nanos(5), Nanos(15)), Some((Nanos(10), Nanos(15))));
        assert_eq!(r.clamp(Nanos(0), Nanos(5)), None);
        assert_eq!(
            TimeRange::ANY.clamp(Nanos(1), Nanos(2)),
            Some((Nanos(1), Nanos(2)))
        );
    }

    #[test]
    #[should_panic(expected = "start must not exceed")]
    fn bad_range_panics() {
        let _ = TimeRange::between(Nanos(2), Nanos(1));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Nanos(5).saturating_sub(Nanos(10)), Nanos(0));
        assert_eq!(Nanos::MAX.saturating_add(Nanos(1)), Nanos::MAX);
    }
}
