//! Up–down routing abstractions: ECMP hashing, candidate egress ports,
//! shortest-path enumeration, and precomputed route tables.
//!
//! The paper's testbeds run ECMP or per-packet spraying (§4.2) over the
//! equal-cost up–down paths of fat-tree/VL2. The simulator asks the topology
//! for the candidate egress ports at each switch and picks one with an ECMP
//! hash, a spraying policy, or a fault-induced override.

use crate::graph::{Peer, Topology};
use crate::ids::{FlowId, HostId, PortNo, SwitchId};
use crate::path::Path;

/// Routing interface implemented by each structured topology.
pub trait UpDownRouting {
    /// The underlying static topology.
    fn topology(&self) -> &Topology;

    /// Candidate egress ports at `sw` for traffic toward the rack of
    /// `dst_tor`, under canonical up–down routing with no failures.
    /// More than one entry means an ECMP group.
    fn candidates_to_tor(&self, sw: SwitchId, dst_tor: SwitchId) -> Vec<PortNo>;

    /// Candidate egress ports at `sw` toward destination host `dst`.
    ///
    /// If the host attaches to `sw` this is its host-facing port; otherwise
    /// the ToR-level candidates.
    fn candidates(&self, sw: SwitchId, dst: HostId) -> Vec<PortNo> {
        let topo = self.topology();
        let hm = topo.host(dst);
        if hm.tor == sw {
            vec![hm.tor_port]
        } else {
            self.candidates_to_tor(sw, hm.tor)
        }
    }

    /// All equal-cost shortest switch-level paths between two hosts.
    fn all_paths(&self, src: HostId, dst: HostId) -> Vec<Path>;

    /// Length of the shortest path in the paper's hop counting (host links
    /// included): intra-rack = 2, intra-pod = 4, inter-pod fat-tree = 6.
    fn shortest_hops(&self, src: HostId, dst: HostId) -> usize {
        self.all_paths(src, dst)
            .first()
            .map(|p| p.num_hops())
            .unwrap_or(0)
    }

    /// Returns true if `path` is one of the canonical shortest paths for the
    /// host pair. Detour (failover) paths return false.
    fn is_shortest(&self, src: HostId, dst: HostId, path: &Path) -> bool {
        self.all_paths(src, dst).contains(path)
    }
}

/// 64-bit FNV-1a hash of the 5-tuple plus a per-switch salt.
///
/// Commodity switches hash the 5-tuple to pick an ECMP member; the salt
/// models per-switch hash seeds so consecutive tiers decorrelate.
pub fn ecmp_hash(flow: &FlowId, salt: u64) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET ^ salt.wrapping_mul(PRIME);
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    };
    for b in flow.src_ip.0.to_be_bytes() {
        eat(b);
    }
    for b in flow.dst_ip.0.to_be_bytes() {
        eat(b);
    }
    for b in flow.src_port.to_be_bytes() {
        eat(b);
    }
    for b in flow.dst_port.to_be_bytes() {
        eat(b);
    }
    eat(flow.proto.number());
    // FNV's output keeps near-arithmetic-progression structure for inputs
    // differing in a few low bytes (e.g. consecutive source ports), which a
    // single xorshift-multiply finalizer does not fully break modulo small
    // ECMP group sizes. Fold the halves together first, then finish with a
    // splitmix64-style mixer.
    h ^= h.rotate_left(32);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Dense precomputed routing tables: candidate egress ports for every
/// (switch, destination-ToR) pair.
///
/// The simulator's forwarding hot path uses this instead of recomputing
/// candidates per packet.
#[derive(Clone, Debug)]
pub struct RouteTables {
    tors: Vec<SwitchId>,
    /// `tor_slot[s]` = dense index of ToR `s`, or `usize::MAX`.
    tor_slot: Vec<usize>,
    /// `table[sw][tor_slot]` = candidate ports.
    table: Vec<Vec<Vec<PortNo>>>,
}

impl RouteTables {
    /// Precomputes tables from a routing implementation.
    pub fn build<R: UpDownRouting + ?Sized>(routing: &R) -> Self {
        let topo = routing.topology();
        let tors: Vec<SwitchId> = topo
            .switches
            .iter()
            .filter(|s| s.tier == crate::graph::Tier::Tor)
            .map(|s| s.id)
            .collect();
        let mut tor_slot = vec![usize::MAX; topo.num_switches()];
        for (i, t) in tors.iter().enumerate() {
            tor_slot[t.index()] = i;
        }
        let table = topo
            .switches
            .iter()
            .map(|sw| {
                tors.iter()
                    .map(|&t| routing.candidates_to_tor(sw.id, t))
                    .collect()
            })
            .collect();
        RouteTables {
            tors,
            tor_slot,
            table,
        }
    }

    /// Candidate egress ports at `sw` toward `dst_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `dst_tor` is not a ToR switch.
    pub fn candidates_to_tor(&self, sw: SwitchId, dst_tor: SwitchId) -> &[PortNo] {
        let slot = self.tor_slot[dst_tor.index()];
        assert!(slot != usize::MAX, "{dst_tor} is not a ToR switch");
        &self.table[sw.index()][slot]
    }

    /// The ToR switches of the topology, in dense order.
    pub fn tors(&self) -> &[SwitchId] {
        &self.tors
    }

    fn slot(&self, dst_tor: SwitchId) -> usize {
        let slot = self.tor_slot[dst_tor.index()];
        assert!(slot != usize::MAX, "{dst_tor} is not a ToR switch");
        slot
    }

    /// Replaces the candidate set at `sw` toward `dst_tor`.
    ///
    /// This is the mutation hook used by misconfiguration injection and by
    /// the static verifier's differential tests; canonical tables never call
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `dst_tor` is not a ToR switch.
    pub fn set_candidates(&mut self, sw: SwitchId, dst_tor: SwitchId, ports: Vec<PortNo>) {
        let slot = self.slot(dst_tor);
        self.table[sw.index()][slot] = ports;
    }

    /// Removes one candidate port at `sw` toward `dst_tor`.
    ///
    /// Returns true if the port was present (and is now gone).
    ///
    /// # Panics
    ///
    /// Panics if `dst_tor` is not a ToR switch.
    pub fn remove_candidate(&mut self, sw: SwitchId, dst_tor: SwitchId, port: PortNo) -> bool {
        let slot = self.slot(dst_tor);
        let cands = &mut self.table[sw.index()][slot];
        let before = cands.len();
        cands.retain(|&p| p != port);
        cands.len() != before
    }

    /// Swaps the candidate sets at `sw` for two destination ToRs — the
    /// classic "transposed uplink rules" misconfiguration.
    ///
    /// # Panics
    ///
    /// Panics if either destination is not a ToR switch.
    pub fn swap_rules(&mut self, sw: SwitchId, dst_a: SwitchId, dst_b: SwitchId) {
        let (sa, sb) = (self.slot(dst_a), self.slot(dst_b));
        self.table[sw.index()].swap(sa, sb);
    }

    /// Iterates every rule as `(switch, destination ToR, candidate ports)`.
    ///
    /// This is the rule-level view the static verifier and table-diffing
    /// consume; order is dense by switch then by ToR slot.
    pub fn rules(&self) -> impl Iterator<Item = (SwitchId, SwitchId, &[PortNo])> + '_ {
        self.table.iter().enumerate().flat_map(move |(s, row)| {
            row.iter()
                .enumerate()
                .map(move |(slot, cands)| (SwitchId(s as u16), self.tors[slot], cands.as_slice()))
        })
    }
}

/// Checks that a non-empty `path` is a contiguous switch walk in the
/// topology: every consecutive switch pair is joined by a physical link.
///
/// This is the single path-validity definition shared by [`is_walk`] and by
/// the static verifier's witness walks, so the two cannot drift.
pub fn is_contiguous_walk(topo: &Topology, path: &Path) -> bool {
    !path.is_empty() && path.links().all(|l| topo.adjacent(l.from, l.to))
}

/// Checks that `path` is a contiguous switch walk in the topology and
/// starts/ends at the ToRs of the given hosts. Used by tests and by the
/// conformance checker to validate trajectories against ground truth.
pub fn is_walk(topo: &Topology, src: HostId, dst: HostId, path: &Path) -> bool {
    let (Some(first), Some(last)) = (path.first(), path.last()) else {
        return false;
    };
    if topo.host(src).tor != first || topo.host(dst).tor != last {
        return false;
    }
    is_contiguous_walk(topo, path)
}

/// Picks one ECMP member from a candidate list for a flow.
///
/// Returns `None` when the candidate list is empty.
pub fn ecmp_pick(candidates: &[PortNo], flow: &FlowId, salt: u64) -> Option<PortNo> {
    if candidates.is_empty() {
        None
    } else {
        let h = ecmp_hash(flow, salt);
        Some(candidates[(h % candidates.len() as u64) as usize])
    }
}

/// Verifies an egress peer exists (the port is wired to something).
pub fn port_connected(topo: &Topology, sw: SwitchId, port: PortNo) -> bool {
    !matches!(topo.peer(sw, port), Peer::Unconnected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Ip;

    #[test]
    fn ecmp_hash_is_deterministic_and_salt_sensitive() {
        let f = FlowId::tcp(Ip::new(10, 0, 0, 2), 40000, Ip::new(10, 1, 0, 2), 80);
        assert_eq!(ecmp_hash(&f, 1), ecmp_hash(&f, 1));
        assert_ne!(ecmp_hash(&f, 1), ecmp_hash(&f, 2));
        let g = FlowId::tcp(Ip::new(10, 0, 0, 2), 40001, Ip::new(10, 1, 0, 2), 80);
        assert_ne!(ecmp_hash(&f, 1), ecmp_hash(&g, 1));
    }

    #[test]
    fn ecmp_pick_bounds() {
        let f = FlowId::tcp(Ip::new(10, 0, 0, 2), 40000, Ip::new(10, 1, 0, 2), 80);
        assert_eq!(ecmp_pick(&[], &f, 0), None);
        let cands = [PortNo(2), PortNo(3)];
        for salt in 0..32 {
            let p = ecmp_pick(&cands, &f, salt).unwrap();
            assert!(cands.contains(&p));
        }
    }

    #[test]
    fn route_table_mutation_api() {
        use crate::fattree::{FatTree, FatTreeParams};
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        let (t00, t10, t11) = (ft.tor(0, 0), ft.tor(1, 0), ft.tor(1, 1));

        // set_candidates replaces the whole group.
        assert_eq!(rt.candidates_to_tor(t00, t10).len(), 2);
        rt.set_candidates(t00, t10, vec![PortNo(0)]);
        assert_eq!(rt.candidates_to_tor(t00, t10), &[PortNo(0)]);

        // remove_candidate reports presence.
        assert!(rt.remove_candidate(t00, t11, PortNo(2)));
        assert!(!rt.remove_candidate(t00, t11, PortNo(2)));
        assert_eq!(rt.candidates_to_tor(t00, t11), &[PortNo(3)]);
        rt.remove_candidate(t00, t11, PortNo(3));
        assert!(rt.candidates_to_tor(t00, t11).is_empty());

        // swap_rules transposes two destinations at one switch.
        let a10 = ft.agg(1, 0);
        let down_t10 = rt.candidates_to_tor(a10, t10).to_vec();
        let down_t11 = rt.candidates_to_tor(a10, t11).to_vec();
        assert_ne!(down_t10, down_t11);
        rt.swap_rules(a10, t10, t11);
        assert_eq!(rt.candidates_to_tor(a10, t10), down_t11.as_slice());
        assert_eq!(rt.candidates_to_tor(a10, t11), down_t10.as_slice());

        // rules() walks every (switch, dst ToR) pair exactly once.
        let topo = ft.topology();
        let n = rt.rules().count();
        assert_eq!(n, topo.num_switches() * rt.tors().len());
        let hit = rt
            .rules()
            .find(|&(sw, dst, _)| sw == t00 && dst == t10)
            .unwrap();
        assert_eq!(hit.2, &[PortNo(0)]);
    }

    #[test]
    fn contiguous_walk_definition_shared_with_is_walk() {
        use crate::fattree::{FatTree, FatTreeParams};
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let topo = ft.topology();
        let good = Path(vec![ft.tor(0, 0), ft.agg(0, 0), ft.tor(0, 1)]);
        let bad = Path(vec![ft.tor(0, 0), ft.tor(1, 0)]);
        assert!(is_contiguous_walk(topo, &good));
        assert!(!is_contiguous_walk(topo, &bad));
        assert!(!is_contiguous_walk(topo, &Path(vec![])));
        // is_walk = contiguity + correct endpoint ToRs.
        let src = ft.host(0, 0, 0);
        let dst = ft.host(0, 1, 0);
        assert!(is_walk(topo, src, dst, &good));
        assert!(!is_walk(topo, src, dst, &bad));
    }

    #[test]
    fn ecmp_spreads_flows() {
        // With many flows, both members of a 2-way group should be used.
        let cands = [PortNo(0), PortNo(1)];
        let mut seen = [0usize; 2];
        for sport in 0..64u16 {
            let f = FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80);
            let p = ecmp_pick(&cands, &f, 7).unwrap();
            seen[p.index()] += 1;
        }
        assert!(seen[0] > 8 && seen[1] > 8, "badly skewed: {seen:?}");
    }
}
