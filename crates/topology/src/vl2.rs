//! VL2 topology builder (Greenberg et al., SIGCOMM'09), the second
//! structured topology the paper supports (§3.1).
//!
//! Structure for parameters `(DA, DI)`:
//! - `DA/2` **intermediate** switches with `DI` ports each (represented with
//!   [`Tier::Core`] — they are the turning points of valiant load
//!   balancing, like fat-tree cores);
//! - `DI` **aggregate** switches with `DA` ports each, forming a complete
//!   bipartite graph with the intermediates;
//! - `DI·DA/4` ToR switches, each with two uplinks to two distinct
//!   aggregates;
//! - a configurable number of hosts per ToR (the original paper uses 20).

use crate::graph::{Tier, Topology};
use crate::ids::{HostId, Ip, PortNo, SwitchId};
use crate::path::Path;
use crate::routing::UpDownRouting;
use serde::{Deserialize, Serialize};

/// VL2 build parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vl2Params {
    /// Aggregate switch port count `DA` (even, >= 4).
    pub da: u16,
    /// Intermediate switch port count `DI` (even, >= 2).
    pub di: u16,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: u16,
}

impl Vl2Params {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on unsupported values.
    pub fn validate(self) {
        assert!(
            self.da >= 4 && self.da.is_multiple_of(2),
            "DA must be even and >= 4"
        );
        assert!(
            self.di >= 2 && self.di.is_multiple_of(2),
            "DI must be even and >= 2"
        );
        assert!(
            (self.da as usize * self.di as usize).is_multiple_of(4),
            "DA*DI must be divisible by 4"
        );
        assert!(self.hosts_per_tor >= 1 && self.hosts_per_tor <= 253);
        assert!(
            self.di <= 62,
            "DI > 62 exceeds the paper's 12-bit link-ID envelope for VL2"
        );
    }

    /// Number of ToR switches.
    pub fn num_tors(self) -> usize {
        self.da as usize * self.di as usize / 4
    }

    /// Number of aggregate switches.
    pub fn num_aggs(self) -> usize {
        self.di as usize
    }

    /// Number of intermediate switches.
    pub fn num_ints(self) -> usize {
        self.da as usize / 2
    }
}

/// A built VL2 network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vl2 {
    params: Vl2Params,
    topo: Topology,
}

impl Vl2 {
    /// Builds the VL2 network for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see [`Vl2Params::validate`]).
    pub fn build(params: Vl2Params) -> Self {
        params.validate();
        let nt = params.num_tors();
        let na = params.num_aggs();
        let ni = params.num_ints();
        let hpt = params.hosts_per_tor as usize;
        let mut topo = Topology::new();

        for r in 0..nt {
            let id = topo.add_switch(Tier::Tor, None, r as u16, hpt + 2);
            debug_assert_eq!(id.index(), r);
        }
        for a in 0..na {
            let id = topo.add_switch(Tier::Agg, None, a as u16, params.da as usize);
            debug_assert_eq!(id.index(), nt + a);
        }
        for i in 0..ni {
            let id = topo.add_switch(Tier::Core, None, i as u16, params.di as usize);
            debug_assert_eq!(id.index(), nt + na + i);
        }

        let tor = |r: usize| SwitchId(r as u16);
        let agg = |a: usize| SwitchId((nt + a) as u16);
        let int = |i: usize| SwitchId((nt + na + i) as u16);

        // ToR uplinks: ToR r connects to aggregates (2r mod DI) and
        // (2r+1 mod DI). Aggregate down ports are filled in ToR order.
        let mut agg_down_fill = vec![0usize; na];
        for r in 0..nt {
            for (u, a) in [(2 * r) % na, (2 * r + 1) % na].into_iter().enumerate() {
                let down = agg_down_fill[a];
                agg_down_fill[a] += 1;
                topo.connect(tor(r), PortNo((hpt + u) as u8), agg(a), PortNo(down as u8));
            }
        }
        debug_assert!(agg_down_fill.iter().all(|&f| f == params.da as usize / 2));

        // Aggregate <-> intermediate: complete bipartite. Agg a port
        // (DA/2 + i) to int i port a.
        for a in 0..na {
            for i in 0..ni {
                topo.connect(
                    agg(a),
                    PortNo((params.da as usize / 2 + i) as u8),
                    int(i),
                    PortNo(a as u8),
                );
            }
        }

        // Hosts: 20.(r >> 8).(r & 255).(h + 2).
        for r in 0..nt {
            for h in 0..hpt {
                topo.add_host(
                    Ip::new(20, (r >> 8) as u8, (r & 255) as u8, (h + 2) as u8),
                    tor(r),
                    PortNo(h as u8),
                );
            }
        }
        debug_assert!(topo.validate().is_ok());
        Vl2 { params, topo }
    }

    /// The build parameters.
    pub fn params(&self) -> Vl2Params {
        self.params
    }

    /// ToR switch `r`.
    pub fn tor(&self, r: usize) -> SwitchId {
        debug_assert!(r < self.params.num_tors());
        SwitchId(r as u16)
    }

    /// Aggregate switch `a`.
    pub fn agg(&self, a: usize) -> SwitchId {
        debug_assert!(a < self.params.num_aggs());
        SwitchId((self.params.num_tors() + a) as u16)
    }

    /// Intermediate switch `i`.
    pub fn int(&self, i: usize) -> SwitchId {
        debug_assert!(i < self.params.num_ints());
        SwitchId((self.params.num_tors() + self.params.num_aggs() + i) as u16)
    }

    /// The two aggregate indices a ToR uplinks to, in uplink-slot order.
    pub fn tor_aggs(&self, r: usize) -> (usize, usize) {
        let na = self.params.num_aggs();
        ((2 * r) % na, (2 * r + 1) % na)
    }

    /// Classifies a switch ID into its VL2 role and position.
    pub fn coords(&self, sw: SwitchId) -> (Tier, usize) {
        let nt = self.params.num_tors();
        let na = self.params.num_aggs();
        let i = sw.index();
        if i < nt {
            (Tier::Tor, i)
        } else if i < nt + na {
            (Tier::Agg, i - nt)
        } else {
            (Tier::Core, i - nt - na)
        }
    }

    /// Host `h` on ToR `r`.
    pub fn host(&self, r: usize, h: usize) -> HostId {
        let hpt = self.params.hosts_per_tor as usize;
        debug_assert!(r < self.params.num_tors() && h < hpt);
        HostId((r * hpt + h) as u32)
    }

    /// Decomposes a host ID into `(tor, slot)`.
    pub fn host_coords(&self, host: HostId) -> (usize, usize) {
        let hpt = self.params.hosts_per_tor as usize;
        (host.index() / hpt, host.index() % hpt)
    }
}

impl UpDownRouting for Vl2 {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn candidates_to_tor(&self, sw: SwitchId, dst_tor: SwitchId) -> Vec<PortNo> {
        let hpt = self.params.hosts_per_tor as usize;
        let (_, dr) = {
            let (tier, pos) = self.coords(dst_tor);
            debug_assert_eq!(tier, Tier::Tor);
            (tier, pos)
        };
        let (da1, da2) = self.tor_aggs(dr);
        match self.coords(sw) {
            (Tier::Tor, r) if self.tor(r) == dst_tor => vec![],
            (Tier::Tor, _) => vec![PortNo(hpt as u8), PortNo((hpt + 1) as u8)],
            (Tier::Agg, a) if a == da1 || a == da2 => {
                vec![self
                    .topo
                    .switch(sw)
                    .port_towards(dst_tor)
                    .expect("aggregate must reach its attached ToR")]
            }
            (Tier::Agg, _) => {
                let half = self.params.da as usize / 2;
                (0..self.params.num_ints())
                    .map(|i| PortNo((half + i) as u8))
                    .collect()
            }
            (Tier::Core, _) => {
                // Intermediate: down to either of the destination ToR's
                // aggregates (ports are indexed by aggregate).
                let mut ports = vec![PortNo(da1 as u8)];
                if da2 != da1 {
                    ports.push(PortNo(da2 as u8));
                }
                ports
            }
        }
    }

    fn all_paths(&self, src: HostId, dst: HostId) -> Vec<Path> {
        let (sr, _) = self.host_coords(src);
        let (dr, _) = self.host_coords(dst);
        if src == dst {
            return vec![];
        }
        let (ts, td) = (self.tor(sr), self.tor(dr));
        if ts == td {
            return vec![Path::new(vec![ts])];
        }
        let (sa1, sa2) = self.tor_aggs(sr);
        let (da1, da2) = self.tor_aggs(dr);
        let s_aggs = if sa1 == sa2 {
            vec![sa1]
        } else {
            vec![sa1, sa2]
        };
        let d_aggs = if da1 == da2 {
            vec![da1]
        } else {
            vec![da1, da2]
        };
        // If the ToRs share an aggregate, the shortest paths turn there.
        let shared: Vec<usize> = s_aggs
            .iter()
            .copied()
            .filter(|a| d_aggs.contains(a))
            .collect();
        if !shared.is_empty() {
            return shared
                .into_iter()
                .map(|a| Path::new(vec![ts, self.agg(a), td]))
                .collect();
        }
        // Otherwise: up to any intermediate, down via either destination agg.
        let mut paths = Vec::new();
        for &ua in &s_aggs {
            for i in 0..self.params.num_ints() {
                for &dna in &d_aggs {
                    paths.push(Path::new(vec![
                        ts,
                        self.agg(ua),
                        self.int(i),
                        self.agg(dna),
                        td,
                    ]));
                }
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::is_walk;

    fn small() -> Vl2 {
        Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        })
    }

    #[test]
    fn sizes() {
        let v = small();
        // 4 ToRs, 4 aggs, 2 ints.
        assert_eq!(v.topology().num_switches(), 10);
        assert_eq!(v.topology().num_hosts(), 8);
        assert!(v.topology().validate().is_ok());
    }

    #[test]
    fn paper_envelope_vl2() {
        // The paper: 12-bit IDs support VL2 with 62-port switches
        // (roughly 19K servers at 20 hosts/ToR).
        let p = Vl2Params {
            da: 62,
            di: 62,
            hosts_per_tor: 20,
        };
        assert_eq!(p.num_tors() * 20, 19220);
    }

    #[test]
    fn complete_bipartite_agg_int() {
        let v = small();
        for a in 0..4 {
            for i in 0..2 {
                assert!(v.topology().adjacent(v.agg(a), v.int(i)));
            }
        }
    }

    #[test]
    fn tor_uplinks() {
        let v = small();
        for r in 0..4 {
            let (a1, a2) = v.tor_aggs(r);
            assert_ne!(a1, a2);
            assert!(v.topology().adjacent(v.tor(r), v.agg(a1)));
            assert!(v.topology().adjacent(v.tor(r), v.agg(a2)));
        }
    }

    #[test]
    fn paths_via_intermediates() {
        let v = small();
        // ToR 0 uses aggs (0,1); ToR 1 uses aggs (2,3): no shared agg.
        let (src, dst) = (v.host(0, 0), v.host(1, 0));
        let paths = v.all_paths(src, dst);
        // 2 up-aggs x 2 ints x 2 down-aggs = 8.
        assert_eq!(paths.len(), 8);
        for p in &paths {
            assert_eq!(p.num_hops(), 6);
            assert!(is_walk(v.topology(), src, dst, p));
        }
    }

    #[test]
    fn paths_via_shared_agg() {
        let v = small();
        // ToR 0 uses aggs (0,1); ToR 2 uses aggs (0,1): both shared.
        let (src, dst) = (v.host(0, 0), v.host(2, 0));
        let paths = v.all_paths(src, dst);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.num_hops(), 4);
            assert!(is_walk(v.topology(), src, dst, p));
        }
    }

    #[test]
    fn candidates_consistent_with_paths() {
        let v = small();
        let dst = v.host(1, 1);
        let dtor = v.tor(1);
        // ToR: two uplinks.
        assert_eq!(v.candidates_to_tor(v.tor(0), dtor).len(), 2);
        // Unattached agg: all intermediates.
        assert_eq!(v.candidates_to_tor(v.agg(0), dtor).len(), 2);
        // Attached agg: direct down port.
        let (da1, _) = v.tor_aggs(1);
        assert_eq!(v.candidates_to_tor(v.agg(da1), dtor).len(), 1);
        // Intermediate: two down candidates.
        assert_eq!(v.candidates_to_tor(v.int(0), dtor).len(), 2);
        // Host port at the destination ToR.
        assert_eq!(v.candidates(dtor, dst), vec![PortNo(1)]);
    }

    #[test]
    fn same_tor_and_self() {
        let v = small();
        assert_eq!(v.all_paths(v.host(0, 0), v.host(0, 1)).len(), 1);
        assert!(v.all_paths(v.host(0, 0), v.host(0, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "DA must be even")]
    fn odd_da_rejected() {
        Vl2::build(Vl2Params {
            da: 5,
            di: 4,
            hosts_per_tor: 1,
        });
    }
}
