//! Identifier types shared across the PathDump workspace.
//!
//! The paper assumes "each switch and host has a unique ID" (§2.1); a
//! `linkID` is a pair of adjacent switch IDs, and a `flowID` is the usual
//! 5-tuple. These are the exact types exposed by the Host API of Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a switch.
///
/// Switch IDs are dense indices assigned by the topology builder; they double
/// as indices into [`crate::Topology`] tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u16);

impl SwitchId {
    /// Returns the switch ID as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Unique identifier of an end-host (edge device).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl HostId {
    /// Returns the host ID as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// Port number local to one switch or host NIC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortNo(pub u8);

impl PortNo {
    /// Returns the port number as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// IPv4 address, stored as a raw big-endian `u32`.
///
/// A dedicated newtype (rather than `std::net::Ipv4Addr`) keeps wire encoding
/// trivially compact and lets the topology builders do address arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ip(pub u32);

impl Ip {
    /// Builds an address from dotted-quad components.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four dotted-quad components.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Transport protocol of a flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP (IP protocol number 6).
    Tcp,
    /// UDP (IP protocol number 17).
    Udp,
    /// Any other protocol, identified by its IP protocol number.
    Other(u8),
}

impl Protocol {
    /// Returns the IP protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Builds a protocol from its IP protocol number.
    pub const fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Debug for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The usual 5-tuple flow identifier (§2.1):
/// `<srcIP, dstIP, srcPort, dstPort, protocol>`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId {
    /// Source IPv4 address.
    pub src_ip: Ip,
    /// Destination IPv4 address.
    pub dst_ip: Ip,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowId {
    /// Builds a TCP flow ID.
    pub const fn tcp(src_ip: Ip, src_port: u16, dst_ip: Ip, dst_port: u16) -> Self {
        FlowId {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Tcp,
        }
    }

    /// Builds a UDP flow ID.
    pub const fn udp(src_ip: Ip, src_port: u16, dst_ip: Ip, dst_port: u16) -> Self {
        FlowId {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Udp,
        }
    }

    /// Returns the flow ID of the reverse direction (ACK stream).
    pub const fn reversed(self) -> Self {
        FlowId {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}/{:?}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A directed link between two adjacent switches: the paper's `linkID`
/// `<Si, Sj>` where the packet travels from `Si` to `Sj`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkDir {
    /// Upstream switch (the packet leaves this switch...).
    pub from: SwitchId,
    /// Downstream switch (...and arrives at this one).
    pub to: SwitchId,
}

impl LinkDir {
    /// Builds a directed link.
    pub const fn new(from: SwitchId, to: SwitchId) -> Self {
        LinkDir { from, to }
    }

    /// Returns the link in the opposite direction.
    pub const fn reversed(self) -> Self {
        LinkDir {
            from: self.to,
            to: self.from,
        }
    }

    /// Returns the undirected endpoints in canonical (sorted) order.
    pub fn canonical(self) -> (SwitchId, SwitchId) {
        if self.from.0 <= self.to.0 {
            (self.from, self.to)
        } else {
            (self.to, self.from)
        }
    }
}

impl fmt::Debug for LinkDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.from, self.to)
    }
}

impl fmt::Display for LinkDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A link pattern with optional wildcards, as accepted by the Host API:
/// `<?, Sj>` means "all incoming links of `Sj`", `<*, *>` means "any link"
/// (§2.1: "PathDump supports wildcard entries for switchIDs").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct LinkPattern {
    /// Upstream switch; `None` is the wildcard `?`.
    pub from: Option<SwitchId>,
    /// Downstream switch; `None` is the wildcard `?`.
    pub to: Option<SwitchId>,
}

impl LinkPattern {
    /// The fully wildcarded pattern `<*, *>`.
    pub const ANY: LinkPattern = LinkPattern {
        from: None,
        to: None,
    };

    /// Builds an exact (no wildcard) pattern.
    pub const fn exact(from: SwitchId, to: SwitchId) -> Self {
        LinkPattern {
            from: Some(from),
            to: Some(to),
        }
    }

    /// Pattern matching every link *into* `to`: `<?, Sj>`.
    pub const fn into(to: SwitchId) -> Self {
        LinkPattern {
            from: None,
            to: Some(to),
        }
    }

    /// Pattern matching every link *out of* `from`: `<Si, ?>`.
    pub const fn out_of(from: SwitchId) -> Self {
        LinkPattern {
            from: Some(from),
            to: None,
        }
    }

    /// Returns true if `link` matches this pattern.
    pub fn matches(&self, link: LinkDir) -> bool {
        self.from.is_none_or(|f| f == link.from) && self.to.is_none_or(|t| t == link.to)
    }

    /// Returns true if the pattern is fully wildcarded.
    pub fn is_any(&self) -> bool {
        self.from.is_none() && self.to.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_octet_roundtrip() {
        let ip = Ip::new(10, 1, 2, 3);
        assert_eq!(ip.octets(), [10, 1, 2, 3]);
        assert_eq!(format!("{ip}"), "10.1.2.3");
    }

    #[test]
    fn protocol_number_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn flow_reversed_is_involution() {
        let f = FlowId::tcp(Ip::new(10, 0, 0, 1), 1234, Ip::new(10, 0, 1, 1), 80);
        assert_eq!(f.reversed().reversed(), f);
        assert_eq!(f.reversed().src_port, 80);
    }

    #[test]
    fn link_canonical_order() {
        let l = LinkDir::new(SwitchId(7), SwitchId(3));
        assert_eq!(l.canonical(), (SwitchId(3), SwitchId(7)));
        assert_eq!(l.reversed().canonical(), l.canonical());
    }

    #[test]
    fn link_pattern_wildcards() {
        let l = LinkDir::new(SwitchId(1), SwitchId(2));
        assert!(LinkPattern::ANY.matches(l));
        assert!(LinkPattern::into(SwitchId(2)).matches(l));
        assert!(!LinkPattern::into(SwitchId(1)).matches(l));
        assert!(LinkPattern::out_of(SwitchId(1)).matches(l));
        assert!(LinkPattern::exact(SwitchId(1), SwitchId(2)).matches(l));
        assert!(!LinkPattern::exact(SwitchId(2), SwitchId(1)).matches(l));
    }

    #[test]
    fn link_pattern_is_any() {
        assert!(LinkPattern::ANY.is_any());
        assert!(!LinkPattern::into(SwitchId(0)).is_any());
    }
}
