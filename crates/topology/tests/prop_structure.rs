//! Property-based structural invariants for the topology builders and
//! up–down routing.

use pathdump_topology::{FatTree, FatTreeParams, HostId, Tier, UpDownRouting, Vl2, Vl2Params};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fat-tree structural invariants hold for every even k.
    #[test]
    fn fattree_structure(k in prop_oneof![Just(4u16), Just(6), Just(8), Just(10), Just(12)]) {
        let ft = FatTree::build(FatTreeParams { k });
        let topo = ft.topology();
        let ku = k as usize;
        prop_assert!(topo.validate().is_ok());
        prop_assert_eq!(topo.num_switches(), 5 * ku * ku / 4);
        prop_assert_eq!(topo.num_hosts(), ku * ku * ku / 4);
        // Link count: ToR-Agg (k * k/2 * k/2) + Agg-Core (same).
        prop_assert_eq!(topo.links().count(), ku * ku * ku / 2);
        // Every switch's switch-facing degree matches its tier.
        for sw in &topo.switches {
            let deg = topo.switch_neighbors(sw.id).len();
            match sw.tier {
                Tier::Tor => prop_assert_eq!(deg, ku / 2),
                Tier::Agg | Tier::Core => prop_assert_eq!(deg, ku),
            }
        }
    }

    /// Following the first routing candidate at every switch always
    /// delivers within 4 switch hops (up-down routing is loop-free and
    /// complete).
    #[test]
    fn fattree_routing_progress(
        k in prop_oneof![Just(4u16), Just(6), Just(8)],
        src_i in any::<u32>(),
        dst_i in any::<u32>(),
        pick in any::<u8>(),
    ) {
        let ft = FatTree::build(FatTreeParams { k });
        let topo = ft.topology();
        let n = topo.num_hosts() as u32;
        let (src, dst) = (HostId(src_i % n), HostId(dst_i % n));
        prop_assume!(src != dst);
        let mut cur = topo.host(src).tor;
        let mut hops = 0;
        loop {
            let cands = ft.candidates(cur, dst);
            prop_assert!(!cands.is_empty(), "no candidates at {cur}");
            let port = cands[pick as usize % cands.len()];
            match topo.peer(cur, port) {
                pathdump_topology::Peer::Host(h) => {
                    prop_assert_eq!(h, dst);
                    break;
                }
                pathdump_topology::Peer::Switch { sw, .. } => {
                    cur = sw;
                }
                pathdump_topology::Peer::Unconnected => {
                    prop_assert!(false, "candidate points nowhere");
                }
            }
            hops += 1;
            prop_assert!(hops <= 5, "routing must terminate");
        }
    }

    /// all_paths returns exactly the equal-cost set: distinct, valid
    /// walks, correct count per the pod relationship.
    #[test]
    fn fattree_all_paths_complete(
        k in prop_oneof![Just(4u16), Just(6), Just(8)],
        src_i in any::<u32>(),
        dst_i in any::<u32>(),
    ) {
        let ft = FatTree::build(FatTreeParams { k });
        let n = ft.topology().num_hosts() as u32;
        let (src, dst) = (HostId(src_i % n), HostId(dst_i % n));
        prop_assume!(src != dst);
        let half = k as usize / 2;
        let (sp, st, _) = ft.host_coords(src);
        let (dp, dt, _) = ft.host_coords(dst);
        let paths = ft.all_paths(src, dst);
        let expected = if (sp, st) == (dp, dt) {
            1
        } else if sp == dp {
            half
        } else {
            half * half
        };
        prop_assert_eq!(paths.len(), expected);
        let distinct: std::collections::HashSet<_> = paths.iter().collect();
        prop_assert_eq!(distinct.len(), paths.len(), "paths must be distinct");
        for p in &paths {
            prop_assert!(pathdump_topology::routing::is_walk(ft.topology(), src, dst, p));
        }
    }

    /// VL2 structure and routing progress.
    #[test]
    fn vl2_structure_and_progress(
        da in prop_oneof![Just(4u16), Just(6), Just(8)],
        di in prop_oneof![Just(4u16), Just(6), Just(8)],
        src_i in any::<u32>(),
        dst_i in any::<u32>(),
        pick in any::<u8>(),
    ) {
        prop_assume!((da as usize * di as usize).is_multiple_of(4));
        let v = Vl2::build(Vl2Params { da, di, hosts_per_tor: 2 });
        let topo = v.topology();
        prop_assert!(topo.validate().is_ok());
        let p = v.params();
        prop_assert_eq!(
            topo.num_switches(),
            p.num_tors() + p.num_aggs() + p.num_ints()
        );
        let n = topo.num_hosts() as u32;
        let (src, dst) = (HostId(src_i % n), HostId(dst_i % n));
        prop_assume!(src != dst);
        let mut cur = topo.host(src).tor;
        let mut hops = 0;
        loop {
            let cands = v.candidates(cur, dst);
            prop_assert!(!cands.is_empty());
            let port = cands[pick as usize % cands.len()];
            match topo.peer(cur, port) {
                pathdump_topology::Peer::Host(h) => {
                    prop_assert_eq!(h, dst);
                    break;
                }
                pathdump_topology::Peer::Switch { sw, .. } => cur = sw,
                pathdump_topology::Peer::Unconnected => prop_assert!(false),
            }
            hops += 1;
            prop_assert!(hops <= 5);
        }
    }
}
