//! Static dataplane verification for the PathDump reproduction.
//!
//! PathDump's runtime conformance story (§2.3, §4.1 of the paper) checks
//! *observed* trajectories against operator policy. This crate closes the
//! other half of the loop: it analyzes the *installed* forwarding state —
//! [`Topology`](pathdump_topology::Topology) plus
//! [`RouteTables`](pathdump_topology::RouteTables) — without simulating a
//! single packet, and proves or refutes three properties per destination
//! ToR:
//!
//! - **loop-freedom**: the forwarding graph restricted to one destination
//!   contains no directed cycle reachable from any source ToR;
//! - **blackhole-freedom**: every switch reachable on the way to the
//!   destination has at least one candidate egress port, and every candidate
//!   port is wired to something
//!   ([`port_connected`](pathdump_topology::routing::port_connected));
//! - **reachability / path-set enumeration**: the complete set of intended
//!   paths per (src ToR, dst ToR) pair, with per-link membership counts for
//!   007-style link scoring.
//!
//! # Soundness of the memoized DFS
//!
//! [`verify`] explores, for each destination ToR `d`, the candidate
//! multigraph `G_d` whose edges at switch `u` are exactly the ECMP candidate
//! ports `routes.candidates_to_tor(u, d)`. Forwarding in this model is
//! **memoryless**: the candidate set at `u` depends only on `(u, d)`, never
//! on how a packet arrived at `u`. Consequently the set of suffix walks
//! leaving `u` toward `d` — and therefore whether *any* of them loops,
//! dead-ends, or misdelivers — is a function of `(u, d)` alone. Memoizing a
//! per-switch status (`Ok` = every maximal suffix walk reaches `d`; `Bad` =
//! some suffix walk hits a violation) is thus *exact* over the full ECMP
//! product: a suffix explored once under one prefix has the same verdict
//! under every other prefix, so pruning revisits loses no violations and
//! invents none. Cycles are caught by the classic three-color argument: an
//! edge into a switch currently on the DFS stack closes a directed cycle in
//! `G_d`, and conversely any cycle reachable from a source ToR is entered by
//! the DFS and its last-discovered node sees a stack ancestor.
//!
//! Reachability needs no separate pass: in a finite graph every maximal walk
//! either revisits a switch (a loop, flagged), stops at a switch with no
//! usable candidate (a blackhole or misdelivery, flagged), or terminates at
//! `d`. A clean verdict therefore implies every source ToR reaches every
//! destination ToR along *every* ECMP resolution — which also makes `G_d` a
//! DAG, the property [`IntentModel`] relies on to enumerate and count paths
//! with dynamic programming.
//!
//! The cost is `O(switches × ports)` per destination instead of the
//! exponential ECMP product, so k=16 fat-trees and large VL2 instances
//! verify in well under a second (see the `verifier_gate` bin and the
//! `verifier` section of `BENCH_tib.json`).
//!
//! # Closing the runtime loop
//!
//! A clean verdict is distilled into an [`IntentModel`]: the per-destination
//! next-hop DAG. `pathdump_apps::ConformancePolicy::from_intent` installs it
//! on host agents, which then raise `PC_FAIL` alarms for any observed
//! trajectory outside the static path set — catching misrouting that drops
//! nothing, with the nearest intended path attached as the second alarm
//! path. The differential tests in `tests/verifier_differential.rs` inject
//! route-table misconfigurations and assert the static and runtime verdicts
//! agree on both simnet engines.

pub mod intent;
pub mod verify;

pub use intent::IntentModel;
pub use verify::{diff_tables, verify, verify_with_intent, Verdict, Violation, ViolationKind};
