//! Repo-level source lint: fails CI on banned patterns in crate sources.
//!
//! Rules (library code only — `src/bin/`, `examples/`, `tests/` and the
//! `#[cfg(test)]` tail of a file are exempt; the workspace convention keeps
//! unit tests at the bottom of each file, so scanning stops at the first
//! `#[cfg(test)]`):
//!
//! - `unwrap()` / `expect(` are banned in the forwarding/query hot paths:
//!   `crates/dpswitch/src/**` (the batched parser included),
//!   `crates/simnet/src/driver.rs`, `crates/simnet/src/pool.rs`,
//!   `crates/tib/src/tib.rs`, `crates/tib/src/memory.rs` (the per-packet
//!   map), `crates/core/src/sharded.rs` (the shard ingest workers), and
//!   the `crates/rpc` plane/channel/fault/codec modules (a panic there
//!   kills every in-flight query on the node). A panic in any of these
//!   takes down the datapath, a pool worker, or the query plane.
//! - `println!` is banned in all library code (benches and bins own stdout;
//!   libraries must not pollute it — `BENCH_tib.json` is parsed from files,
//!   and dpswitch pipelines stdout).
//!
//! Justified sites live in the allowlist file (`lint_allow.txt` at the repo
//! root): one `path needle` pair per line, `#` comments. A finding is
//! allowed when its file matches `path` and its source line contains
//! `needle`.
//!
//! Usage: `lint_gate [--root DIR] [--allow FILE]` (defaults: `crates`,
//! `lint_allow.txt`), run from the repository root as in CI.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files where a panic is a datapath outage: no `unwrap()` / `expect(`.
const HOT_PATHS: &[&str] = &[
    "crates/dpswitch/src/",
    "crates/simnet/src/driver.rs",
    "crates/simnet/src/pool.rs",
    "crates/tib/src/tib.rs",
    "crates/tib/src/memory.rs",
    // The tiered storage engine: insert/seal/evict and the WAL append
    // sit on the per-packet datapath; a panic there drops the host's
    // records on the floor.
    "crates/tib/src/segment.rs",
    "crates/tib/src/wal.rs",
    "crates/core/src/sharded.rs",
    "crates/core/src/standing.rs",
    // The rpc plane: a panic in a state machine, channel or fault hook
    // kills every in-flight query on the node.
    "crates/rpc/src/plane.rs",
    "crates/rpc/src/channel.rs",
    "crates/rpc/src/fault.rs",
    "crates/rpc/src/msg.rs",
    "crates/rpc/src/coverage.rs",
];

/// One banned-pattern hit.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line_no: usize,
    pattern: &'static str,
    line: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: banned `{}`: {}",
            self.file,
            self.line_no,
            self.pattern,
            self.line.trim()
        )
    }
}

/// Is `needle` present at a macro/method boundary (previous char is not a
/// word char)? Keeps `eprintln!` from matching the `println!` ban.
fn has_bounded(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let bounded = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        if bounded {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Scans one library source file. `file` is the normalized repo-relative
/// path (forward slashes); scanning stops at the unit-test tail.
fn scan_source(file: &str, source: &str) -> Vec<Finding> {
    let hot = HOT_PATHS.iter().any(|p| file.starts_with(p));
    let mut findings = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let mut hit = |pattern: &'static str| {
            findings.push(Finding {
                file: file.to_string(),
                line_no: i + 1,
                pattern,
                line: line.to_string(),
            });
        };
        if hot {
            if line.contains("unwrap()") {
                hit("unwrap()");
            }
            if has_bounded(line, "expect(") {
                hit("expect(");
            }
        }
        if has_bounded(line, "println!") {
            hit("println!");
        }
    }
    findings
}

/// Parses the allowlist: `path needle…` per line, `#` comments.
fn parse_allowlist(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, needle) = l.split_once(char::is_whitespace)?;
            Some((path.to_string(), needle.trim().to_string()))
        })
        .collect()
}

fn is_allowed(f: &Finding, allow: &[(String, String)]) -> bool {
    allow
        .iter()
        .any(|(path, needle)| f.file == *path && f.line.contains(needle))
}

/// Library sources under `root`: every `crates/*/src/**/*.rs` except
/// `src/bin/` (per-crate binaries own their stdout and exit behavior).
fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = match std::fs::read_dir(root) {
        Ok(rd) => rd,
        Err(e) => {
            eprintln!("lint_gate: cannot read {}: {e}", root.display());
            return out;
        }
    };
    for entry in crates.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out);
        }
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn main() -> ExitCode {
    let mut root = PathBuf::from("crates");
    let mut allow_path = PathBuf::from("lint_allow.txt");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().unwrap_or_default()),
            "--allow" => allow_path = PathBuf::from(args.next().unwrap_or_default()),
            other => {
                eprintln!("lint_gate: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(t) => parse_allowlist(&t),
        Err(e) => {
            eprintln!(
                "lint_gate: cannot read allowlist {}: {e}",
                allow_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let files = library_sources(&root);
    if files.is_empty() {
        eprintln!("lint_gate: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut bad = 0usize;
    let mut scanned = 0usize;
    for path in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            eprintln!("lint_gate: unreadable {}", path.display());
            bad += 1;
            continue;
        };
        scanned += 1;
        let file = path.to_string_lossy().replace('\\', "/");
        for f in scan_source(&file, &source) {
            if !is_allowed(&f, &allow) {
                eprintln!("{f}");
                bad += 1;
            }
        }
    }

    if bad > 0 {
        eprintln!("lint_gate: {bad} finding(s) across {scanned} file(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("lint_gate: clean ({scanned} files)");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_bans_unwrap_and_expect() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"oops\");\n}\n";
        let f = scan_source("crates/dpswitch/src/datapath.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].pattern, "unwrap()");
        assert_eq!(f[0].line_no, 2);
        assert_eq!(f[1].pattern, "expect(");
    }

    #[test]
    fn non_hot_library_allows_unwrap_but_not_println() {
        let src = "fn f() {\n    x.unwrap();\n    println!(\"hi\");\n}\n";
        let f = scan_source("crates/topology/src/graph.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pattern, "println!");
    }

    #[test]
    fn eprintln_is_not_println() {
        let src = "fn f() {\n    eprintln!(\"to stderr\");\n}\n";
        assert!(scan_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn comments_and_test_tail_are_skipped() {
        let src = "fn f() {}\n// println! in a comment\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); println!(\"t\"); }\n}\n";
        assert!(scan_source("crates/simnet/src/driver.rs", src).is_empty());
    }

    #[test]
    fn allowlist_matches_path_and_needle() {
        let allow = parse_allowlist(
            "# comment\ncrates/tib/src/tib.rs expect(\"overlap checked\")\n\ncrates/bench/src/lib.rs println!\n",
        );
        assert_eq!(allow.len(), 2);
        let f = scan_source(
            "crates/tib/src/tib.rs",
            "fn f() { y.expect(\"overlap checked\"); }\n",
        );
        assert_eq!(f.len(), 1);
        assert!(is_allowed(&f[0], &allow));
        let g = scan_source(
            "crates/tib/src/tib.rs",
            "fn f() { y.expect(\"something else\"); }\n",
        );
        assert!(!is_allowed(&g[0], &allow));
    }
}
