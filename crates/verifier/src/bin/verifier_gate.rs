//! CI gate: healthy fat-tree (k=4/6/8/16) and VL2 forwarding state must
//! statically verify clean, and the k=16 pass must finish inside a wall-time
//! budget — pinning the "well under a second" promise of the memoized DFS.
//!
//! Usage: `verifier_gate [--max-secs F]` (default 5.0, generous for loaded
//! CI runners; locally k=16 verifies in milliseconds). Exits non-zero on
//! any violation or budget overrun.

use std::process::ExitCode;
use std::time::Instant;

use pathdump_topology::{FatTree, FatTreeParams, RouteTables, UpDownRouting, Vl2, Vl2Params};
use pathdump_verifier::{verify, IntentModel};

fn check(name: &str, routing: &dyn UpDownRouting, budget_secs: f64) -> Result<f64, String> {
    let topo = routing.topology();
    let rt = RouteTables::build(routing);
    let t0 = Instant::now();
    let verdict = verify(topo, &rt);
    let secs = t0.elapsed().as_secs_f64();
    if !verdict.is_clean() {
        return Err(format!(
            "{name}: healthy topology failed verification: {} violation(s), first: {:?}",
            verdict.violations.len(),
            verdict.violations.first()
        ));
    }
    let im = IntentModel::build(topo, &rt).map_err(|e| {
        format!(
            "{name}: IntentModel::build rejected clean tables: {} violation(s)",
            e.violations.len()
        )
    })?;
    let total = im.total_paths();
    eprintln!(
        "verifier_gate: {name}: clean, {} pairs, {} intended paths, verify {:.1} ms",
        verdict.pairs_checked,
        total,
        secs * 1e3
    );
    if secs > budget_secs {
        return Err(format!(
            "{name}: verify took {secs:.3} s > budget {budget_secs:.3} s"
        ));
    }
    Ok(secs)
}

fn main() -> ExitCode {
    let mut max_secs = 5.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-secs" => max_secs = args.next().and_then(|v| v.parse().ok()).unwrap_or(max_secs),
            other => {
                eprintln!("verifier_gate: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    for k in [4u16, 6, 8, 16] {
        let ft = FatTree::build(FatTreeParams { k });
        if let Err(e) = check(&format!("fat-tree k={k}"), &ft, max_secs) {
            eprintln!("verifier_gate: FAIL: {e}");
            failed = true;
        }
    }
    let v2 = Vl2::build(Vl2Params {
        da: 16,
        di: 16,
        hosts_per_tor: 4,
    });
    if let Err(e) = check("VL2 da=16 di=16", &v2, max_secs) {
        eprintln!("verifier_gate: FAIL: {e}");
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("verifier_gate: all healthy topologies verify clean within {max_secs} s");
        ExitCode::SUCCESS
    }
}
