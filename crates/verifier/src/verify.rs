//! The static analysis pass: per-destination DFS with memoized suffix
//! results over the ECMP candidate multigraph.
//!
//! See the crate docs for the soundness argument. Every [`Violation`]
//! carries the offending switch and, where meaningful, a concrete witness
//! walk that is contiguous in the topology
//! ([`is_contiguous_walk`](pathdump_topology::routing::is_contiguous_walk))
//! — loop witnesses additionally repeat a directed link, the same loop
//! signature the runtime trap uses (`Path::has_repeated_link`).

use pathdump_topology::routing::port_connected;
use pathdump_topology::{Path, PortNo, RouteTables, SwitchId, Topology};

/// The class of a [`Violation`], for filtering and test assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A directed forwarding cycle for some destination.
    Loop,
    /// A switch with no usable candidate egress (or an unwired port).
    Blackhole,
    /// A candidate port that delivers to a host although the switch is not
    /// the destination ToR.
    Misdelivery,
    /// Installed rule differs from the intended rule (table diff only).
    RuleDeviation,
}

/// One refutation of loop-/blackhole-/reachability-freedom.
///
/// Witness walks start at the source ToR whose DFS discovered the problem
/// and end at the offending switch (for loops, they continue around the
/// cycle once so the repeated directed link is explicit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Traffic toward `dst_tor` can cycle; `witness` walks from a source
    /// ToR into the cycle and around it once (`witness.has_repeated_link()`).
    Loop {
        /// Destination whose forwarding graph contains the cycle.
        dst_tor: SwitchId,
        /// Switch at which the cycle-closing edge leaves.
        sw: SwitchId,
        /// Concrete walk: source ToR → … → `sw` → around the cycle.
        witness: Path,
    },
    /// Traffic toward `dst_tor` can strand at `sw`: either the candidate
    /// list is empty (`port == None`) or a candidate port is unwired.
    Blackhole {
        /// Destination whose traffic strands.
        dst_tor: SwitchId,
        /// Switch where forwarding stops.
        sw: SwitchId,
        /// The unwired candidate port, or `None` for an empty rule.
        port: Option<PortNo>,
        /// Concrete walk from a source ToR ending at `sw`.
        witness: Path,
    },
    /// A candidate port at `sw` hands traffic for `dst_tor` to a host even
    /// though `sw` is not `dst_tor` — the packet is delivered to the wrong
    /// rack without ever being dropped.
    Misdelivery {
        /// Destination the rule claims to serve.
        dst_tor: SwitchId,
        /// Switch holding the bad rule.
        sw: SwitchId,
        /// The host-facing candidate port.
        port: PortNo,
        /// Concrete walk from a source ToR ending at `sw`.
        witness: Path,
    },
    /// The installed candidate set at `(sw, dst_tor)` differs from the
    /// intended one. Produced only by [`diff_tables`] /
    /// [`verify_with_intent`]; carries no witness because the deviation may
    /// be benign in isolation (e.g. a pruned but still loop-free group).
    RuleDeviation {
        /// Switch holding the deviating rule.
        sw: SwitchId,
        /// Destination ToR of the rule.
        dst_tor: SwitchId,
        /// Intended candidates absent from the installed rule.
        missing: Vec<PortNo>,
        /// Installed candidates absent from the intended rule.
        unexpected: Vec<PortNo>,
    },
}

impl Violation {
    /// The violation class.
    pub fn kind(&self) -> ViolationKind {
        match self {
            Violation::Loop { .. } => ViolationKind::Loop,
            Violation::Blackhole { .. } => ViolationKind::Blackhole,
            Violation::Misdelivery { .. } => ViolationKind::Misdelivery,
            Violation::RuleDeviation { .. } => ViolationKind::RuleDeviation,
        }
    }

    /// The switch the violation is pinned to.
    pub fn offending_switch(&self) -> SwitchId {
        match self {
            Violation::Loop { sw, .. }
            | Violation::Blackhole { sw, .. }
            | Violation::Misdelivery { sw, .. }
            | Violation::RuleDeviation { sw, .. } => *sw,
        }
    }

    /// The destination ToR whose forwarding graph is affected.
    pub fn dst_tor(&self) -> SwitchId {
        match self {
            Violation::Loop { dst_tor, .. }
            | Violation::Blackhole { dst_tor, .. }
            | Violation::Misdelivery { dst_tor, .. }
            | Violation::RuleDeviation { dst_tor, .. } => *dst_tor,
        }
    }

    /// The concrete witness walk, when the class carries one.
    pub fn witness(&self) -> Option<&Path> {
        match self {
            Violation::Loop { witness, .. }
            | Violation::Blackhole { witness, .. }
            | Violation::Misdelivery { witness, .. } => Some(witness),
            Violation::RuleDeviation { .. } => None,
        }
    }
}

/// The outcome of a static verification pass.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Every refutation found, in destination-major discovery order.
    pub violations: Vec<Violation>,
    /// Number of destination ToRs analyzed.
    pub destinations: usize,
    /// Number of (src ToR, dst ToR) pairs covered by the analysis.
    pub pairs_checked: usize,
}

impl Verdict {
    /// True when every property holds for every pair.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one class.
    pub fn of_kind(&self, kind: ViolationKind) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.kind() == kind)
    }
}

/// Per-switch memo state for one destination's DFS.
#[derive(Clone, Copy, PartialEq, Eq)]
enum St {
    Unknown,
    InProgress,
    Ok,
    Bad,
}

struct Dfs<'a> {
    topo: &'a Topology,
    routes: &'a RouteTables,
    dst: SwitchId,
    st: Vec<St>,
    stack: Vec<SwitchId>,
    violations: Vec<Violation>,
}

impl Dfs<'_> {
    /// Explores every ECMP resolution of the suffix walks leaving `u`
    /// toward `self.dst`. Returns the memoized status of `u`.
    fn explore(&mut self, u: SwitchId) -> St {
        if u == self.dst {
            return St::Ok;
        }
        match self.st[u.index()] {
            St::Ok => return St::Ok,
            St::Bad => return St::Bad,
            // Callers check for stack membership before recursing.
            St::InProgress => unreachable!("cycle edges are handled at the caller"),
            St::Unknown => {}
        }
        self.st[u.index()] = St::InProgress;
        self.stack.push(u);
        let mut bad = false;

        let cands = self.routes.candidates_to_tor(u, self.dst).to_vec();
        if cands.is_empty() {
            bad = true;
            self.violations.push(Violation::Blackhole {
                dst_tor: self.dst,
                sw: u,
                port: None,
                witness: Path(self.stack.clone()),
            });
        }
        for p in cands {
            // A candidate numbering a port the switch does not even have is
            // the same operational failure as an unwired port.
            let exists = p.index() < self.topo.switch(u).ports.len();
            if !exists || !port_connected(self.topo, u, p) {
                bad = true;
                self.violations.push(Violation::Blackhole {
                    dst_tor: self.dst,
                    sw: u,
                    port: Some(p),
                    witness: Path(self.stack.clone()),
                });
                continue;
            }
            match self.topo.peer(u, p) {
                pathdump_topology::Peer::Host(_) => {
                    bad = true;
                    self.violations.push(Violation::Misdelivery {
                        dst_tor: self.dst,
                        sw: u,
                        port: p,
                        witness: Path(self.stack.clone()),
                    });
                }
                pathdump_topology::Peer::Switch { sw: v, .. } => {
                    if self.st[v.index()] == St::InProgress {
                        // v is a DFS ancestor: the edge u→v closes a cycle.
                        // Witness: prefix into the cycle, then once more
                        // around it so the repeated directed link is
                        // explicit in the walk itself.
                        bad = true;
                        let pos = self
                            .stack
                            .iter()
                            .position(|&s| s == v)
                            .expect("InProgress switch must be on the stack");
                        let mut w = self.stack.clone();
                        w.push(v);
                        w.extend_from_slice(&self.stack[pos + 1..]);
                        w.push(v);
                        self.violations.push(Violation::Loop {
                            dst_tor: self.dst,
                            sw: u,
                            witness: Path(w),
                        });
                    } else if self.explore(v) == St::Bad {
                        bad = true;
                    }
                }
                pathdump_topology::Peer::Unconnected => {
                    unreachable!("port_connected checked above")
                }
            }
        }

        self.stack.pop();
        let res = if bad { St::Bad } else { St::Ok };
        self.st[u.index()] = res;
        res
    }
}

/// Verifies loop-freedom, blackhole-freedom, and reachability of the
/// installed `routes` over `topo`, exhaustively over the ECMP candidate
/// product per (src ToR, dst ToR) pair.
///
/// Cost is `O(destinations × switches × ports)`; see the crate docs for why
/// suffix memoization is exact.
pub fn verify(topo: &Topology, routes: &RouteTables) -> Verdict {
    let tors = routes.tors();
    let mut verdict = Verdict {
        destinations: tors.len(),
        pairs_checked: tors.len() * tors.len(),
        ..Verdict::default()
    };
    for &d in tors {
        let mut dfs = Dfs {
            topo,
            routes,
            dst: d,
            st: vec![St::Unknown; topo.num_switches()],
            stack: Vec::new(),
            violations: Vec::new(),
        };
        for &s in tors {
            dfs.explore(s);
            debug_assert!(dfs.stack.is_empty());
        }
        verdict.violations.append(&mut dfs.violations);
    }
    verdict
}

/// Diffs the installed tables against intended ones, rule by rule, emitting
/// a [`Violation::RuleDeviation`] per differing `(switch, dst ToR)` pair.
///
/// Candidate sets compare as sets (order-insensitive). Both tables must
/// come from the same topology.
pub fn diff_tables(actual: &RouteTables, intended: &RouteTables) -> Vec<Violation> {
    assert_eq!(
        actual.tors(),
        intended.tors(),
        "tables built for different topologies"
    );
    let mut out = Vec::new();
    for (sw, dst_tor, got) in actual.rules() {
        let want = intended.candidates_to_tor(sw, dst_tor);
        let missing: Vec<PortNo> = want.iter().copied().filter(|p| !got.contains(p)).collect();
        let unexpected: Vec<PortNo> = got.iter().copied().filter(|p| !want.contains(p)).collect();
        if !missing.is_empty() || !unexpected.is_empty() {
            out.push(Violation::RuleDeviation {
                sw,
                dst_tor,
                missing,
                unexpected,
            });
        }
    }
    out
}

/// [`verify`] plus a rule-level diff against intended tables. Catches
/// deviations that stay loop- and blackhole-free (e.g. a pruned ECMP
/// member) which pure graph analysis cannot see.
pub fn verify_with_intent(
    topo: &Topology,
    actual: &RouteTables,
    intended: &RouteTables,
) -> Verdict {
    let mut verdict = verify(topo, actual);
    verdict.violations.extend(diff_tables(actual, intended));
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::routing::is_contiguous_walk;
    use pathdump_topology::{FatTree, FatTreeParams, UpDownRouting, Vl2, Vl2Params};

    #[test]
    fn healthy_fat_trees_verify_clean() {
        for k in [4u16, 6, 8] {
            let ft = FatTree::build(FatTreeParams { k });
            let rt = RouteTables::build(&ft);
            let v = verify(ft.topology(), &rt);
            assert!(v.is_clean(), "k={k}: {:?}", v.violations);
            let tors = (k as usize) * (k as usize) / 2;
            assert_eq!(v.destinations, tors);
            assert_eq!(v.pairs_checked, tors * tors);
        }
    }

    #[test]
    fn healthy_vl2_verifies_clean() {
        let v2 = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let rt = RouteTables::build(&v2);
        let v = verify(v2.topology(), &rt);
        assert!(v.is_clean(), "{:?}", v.violations);
    }

    #[test]
    fn empty_rule_is_a_blackhole_with_witness() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        let (a10, t10) = (ft.agg(1, 0), ft.tor(1, 0));
        rt.set_candidates(a10, t10, vec![]);
        let v = verify(ft.topology(), &rt);
        assert!(!v.is_clean());
        let bh = v.of_kind(ViolationKind::Blackhole).next().unwrap();
        assert_eq!(bh.offending_switch(), a10);
        assert_eq!(bh.dst_tor(), t10);
        let w = bh.witness().unwrap();
        assert!(is_contiguous_walk(ft.topology(), w));
        assert_eq!(w.last(), Some(a10));
        assert!(matches!(bh, Violation::Blackhole { port: None, .. }));
    }

    #[test]
    fn swapped_downlinks_are_a_loop_with_link_repeating_witness() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        let a10 = ft.agg(1, 0);
        rt.swap_rules(a10, ft.tor(1, 0), ft.tor(1, 1));
        let v = verify(ft.topology(), &rt);
        let lp = v.of_kind(ViolationKind::Loop).next().unwrap();
        let w = lp.witness().unwrap();
        assert!(is_contiguous_walk(ft.topology(), w));
        assert!(
            w.has_repeated_link(),
            "loop witness must repeat a link: {w}"
        );
    }

    #[test]
    fn host_facing_rule_is_a_misdelivery() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        let (t00, t10) = (ft.tor(0, 0), ft.tor(1, 0));
        // Port 0 of a ToR faces a host.
        rt.set_candidates(t00, t10, vec![PortNo(0)]);
        let v = verify(ft.topology(), &rt);
        let md = v.of_kind(ViolationKind::Misdelivery).next().unwrap();
        assert_eq!(md.offending_switch(), t00);
        assert_eq!(md.dst_tor(), t10);
        assert_eq!(md.witness().unwrap().last(), Some(t00));
    }

    #[test]
    fn unwired_candidate_port_is_a_blackhole() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        let (t00, t10) = (ft.tor(0, 0), ft.tor(1, 0));
        // Ports ≥ k do not exist on a k-port switch.
        rt.set_candidates(t00, t10, vec![PortNo(9)]);
        let v = verify(ft.topology(), &rt);
        let bh = v.of_kind(ViolationKind::Blackhole).next().unwrap();
        assert!(matches!(
            bh,
            Violation::Blackhole {
                port: Some(PortNo(9)),
                ..
            }
        ));
    }

    #[test]
    fn diff_tables_flags_pruned_and_foreign_candidates() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let intended = RouteTables::build(&ft);
        let mut actual = intended.clone();
        let (t00, t10) = (ft.tor(0, 0), ft.tor(1, 0));
        actual.remove_candidate(t00, t10, PortNo(2));
        let devs = diff_tables(&actual, &intended);
        assert_eq!(devs.len(), 1);
        match &devs[0] {
            Violation::RuleDeviation {
                sw,
                dst_tor,
                missing,
                unexpected,
            } => {
                assert_eq!((*sw, *dst_tor), (t00, t10));
                assert_eq!(missing, &[PortNo(2)]);
                assert!(unexpected.is_empty());
            }
            other => panic!("unexpected violation {other:?}"),
        }
        // The pruned-but-nonempty group stays loop/blackhole free, so the
        // graph pass alone is clean — only the diff catches it.
        assert!(verify(ft.topology(), &actual).is_clean());
        let both = verify_with_intent(ft.topology(), &actual, &intended);
        assert_eq!(both.violations.len(), 1);
    }
}
