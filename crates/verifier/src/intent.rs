//! The intent model: a verified snapshot of the forwarding state, distilled
//! into per-destination next-hop DAGs for fast runtime conformance checks.
//!
//! An [`IntentModel`] is only constructible from tables that pass
//! [`verify`](crate::verify::verify) clean — so every per-destination graph
//! is a DAG and every maximal walk terminates at the destination. That
//! invariant is what lets membership checks, path enumeration, and path /
//! link-membership counting all run without cycle guards.

use std::collections::HashMap;

use pathdump_topology::{Path, Peer, RouteTables, SwitchId, Topology, UpDownRouting};

use crate::verify::{verify, Verdict};

/// A verified, queryable model of intended forwarding.
///
/// `next[dst_slot][sw]` holds the intended next-hop *switches* at `sw` for
/// traffic toward the destination ToR with dense index `dst_slot` — the
/// ECMP candidate ports of the verified [`RouteTables`], resolved through
/// the topology's wiring. The destination's own row is empty (walks
/// terminate there).
#[derive(Clone, Debug)]
pub struct IntentModel {
    tors: Vec<SwitchId>,
    /// `tor_slot[s]` = dense index of ToR `s`, or `usize::MAX`.
    tor_slot: Vec<usize>,
    /// `next[dst_slot][sw]` = intended next-hop switches.
    next: Vec<Vec<Vec<SwitchId>>>,
}

impl IntentModel {
    /// Builds the model after statically verifying `routes`; refuses tables
    /// that are not provably loop-, blackhole-, and misdelivery-free, and
    /// returns the failing [`Verdict`] instead.
    pub fn build(topo: &Topology, routes: &RouteTables) -> Result<Self, Verdict> {
        let verdict = verify(topo, routes);
        if !verdict.is_clean() {
            return Err(verdict);
        }
        let tors = routes.tors().to_vec();
        let mut tor_slot = vec![usize::MAX; topo.num_switches()];
        for (i, t) in tors.iter().enumerate() {
            tor_slot[t.index()] = i;
        }
        let mut next = vec![vec![Vec::new(); topo.num_switches()]; tors.len()];
        for (sw, dst_tor, cands) in routes.rules() {
            let slot = tor_slot[dst_tor.index()];
            let hops = &mut next[slot][sw.index()];
            for &p in cands {
                // A clean verdict guarantees reachable candidates are
                // switch-facing; skip anything else defensively.
                if let Peer::Switch { sw: v, .. } = topo.peer(sw, p) {
                    if !hops.contains(&v) {
                        hops.push(v);
                    }
                }
            }
            hops.sort_unstable();
        }
        Ok(IntentModel {
            tors,
            tor_slot,
            next,
        })
    }

    /// Convenience: builds canonical tables from a routing implementation
    /// and verifies them.
    pub fn from_routing<R: UpDownRouting + ?Sized>(routing: &R) -> Result<Self, Verdict> {
        let rt = RouteTables::build(routing);
        Self::build(routing.topology(), &rt)
    }

    /// The ToR switches of the model, in dense order.
    pub fn tors(&self) -> &[SwitchId] {
        &self.tors
    }

    fn slot(&self, tor: SwitchId) -> Option<usize> {
        self.tor_slot
            .get(tor.index())
            .copied()
            .filter(|&s| s != usize::MAX)
    }

    /// True when `path` is one of the intended switch-level paths from
    /// `src_tor` to `dst_tor`: correct endpoints and every hop licensed by
    /// the verified next-hop relation. The intra-rack path is the
    /// single-switch walk `[src_tor]`.
    pub fn contains(&self, src_tor: SwitchId, dst_tor: SwitchId, path: &Path) -> bool {
        let Some(slot) = self.slot(dst_tor) else {
            return false;
        };
        if self.slot(src_tor).is_none() {
            return false;
        }
        if path.first() != Some(src_tor) || path.last() != Some(dst_tor) {
            return false;
        }
        if src_tor == dst_tor {
            return path.len() == 1;
        }
        path.links()
            .all(|l| self.next[slot][l.from.index()].contains(&l.to))
    }

    /// Enumerates the complete intended path set for one pair, in
    /// lexicographic order.
    pub fn paths(&self, src_tor: SwitchId, dst_tor: SwitchId) -> Vec<Path> {
        let Some(slot) = self.slot(dst_tor) else {
            return Vec::new();
        };
        if self.slot(src_tor).is_none() {
            return Vec::new();
        }
        if src_tor == dst_tor {
            return vec![Path(vec![src_tor])];
        }
        let mut out = Vec::new();
        let mut walk = vec![src_tor];
        self.enumerate(slot, dst_tor, &mut walk, &mut out);
        out.sort_unstable();
        out
    }

    fn enumerate(&self, slot: usize, dst: SwitchId, walk: &mut Vec<SwitchId>, out: &mut Vec<Path>) {
        let u = *walk.last().expect("walk starts non-empty");
        if u == dst {
            out.push(Path(walk.clone()));
            return;
        }
        for &v in &self.next[slot][u.index()] {
            walk.push(v);
            self.enumerate(slot, dst, walk, out);
            walk.pop();
        }
    }

    /// Number of intended paths for one pair, by suffix-count dynamic
    /// programming (no enumeration).
    pub fn path_count(&self, src_tor: SwitchId, dst_tor: SwitchId) -> u64 {
        let Some(slot) = self.slot(dst_tor) else {
            return 0;
        };
        if self.slot(src_tor).is_none() {
            return 0;
        }
        let mut memo = vec![None; self.next[slot].len()];
        self.count_down(slot, dst_tor, src_tor, &mut memo)
    }

    fn count_down(&self, slot: usize, dst: SwitchId, u: SwitchId, memo: &mut [Option<u64>]) -> u64 {
        if u == dst {
            return 1;
        }
        if let Some(c) = memo[u.index()] {
            return c;
        }
        let c = self.next[slot][u.index()]
            .iter()
            .map(|&v| self.count_down(slot, dst, v, memo))
            .sum();
        memo[u.index()] = Some(c);
        c
    }

    /// Total intended paths over all (src, dst) ToR pairs — the size of the
    /// path product the verifier covered, for benchmarks and gates.
    pub fn total_paths(&self) -> u64 {
        self.tors
            .iter()
            .flat_map(|&s| self.tors.iter().map(move |&d| (s, d)))
            .map(|(s, d)| self.path_count(s, d))
            .sum()
    }

    /// Per-link membership counts: for every directed switch link, how many
    /// intended paths (over all ToR pairs) traverse it. This is the static
    /// input 007-style scoring needs to weight link votes.
    ///
    /// Computed per destination with two DP sweeps over the DAG: `down[u]` =
    /// paths from `u` to the destination, `reach[u]` = path prefixes from
    /// any source ToR ending at `u`; each edge `u→v` then carries
    /// `reach[u] · down[v]` paths.
    pub fn link_membership(&self) -> HashMap<(SwitchId, SwitchId), u64> {
        let mut membership = HashMap::new();
        for (slot, &d) in self.tors.iter().enumerate() {
            let n = self.next[slot].len();
            let mut down = vec![None; n];
            for &s in &self.tors {
                self.count_down(slot, d, s, &mut down);
            }
            // Topological order over nodes with known `down` (the explored
            // sub-DAG): repeatedly relax until fixpoint is unnecessary —
            // Kahn over the reversed edges is simpler via repeated sweeps
            // on a DAG of bounded depth, but an explicit order is cheap:
            let order = self.topo_order(slot);
            let mut reach = vec![0u64; n];
            for &s in &self.tors {
                if s != d {
                    reach[s.index()] += 1;
                }
            }
            for &u in &order {
                if reach[u.index()] == 0 || u == d {
                    continue;
                }
                for &v in &self.next[slot][u.index()] {
                    let dv = down[v.index()].unwrap_or(if v == d { 1 } else { 0 });
                    *membership.entry((u, v)).or_insert(0) += reach[u.index()] * dv;
                    if v != d {
                        reach[v.index()] += reach[u.index()];
                    }
                }
            }
        }
        membership
    }

    /// Kahn topological order of one destination's next-hop DAG.
    fn topo_order(&self, slot: usize) -> Vec<SwitchId> {
        let n = self.next[slot].len();
        let mut indeg = vec![0usize; n];
        for hops in &self.next[slot] {
            for v in hops {
                indeg[v.index()] += 1;
            }
        }
        let mut queue: Vec<SwitchId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| SwitchId(i as u16))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.next[slot][u.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        order
    }

    /// The intended path sharing the longest common prefix with `observed`
    /// (ties broken lexicographically): the "nearest intended path" attached
    /// to `PC_FAIL` alarms so operators see where the trajectory diverged.
    pub fn nearest_intended(
        &self,
        src_tor: SwitchId,
        dst_tor: SwitchId,
        observed: &Path,
    ) -> Option<Path> {
        let candidates = self.paths(src_tor, dst_tor);
        candidates
            .into_iter()
            .map(|p| {
                let common =
                    p.0.iter()
                        .zip(observed.0.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                (common, p)
            })
            // max_by picks the last maximum; reversing the tie-break via
            // min on (-common, path) keeps the smallest path instead.
            .min_by(|(ca, pa), (cb, pb)| cb.cmp(ca).then_with(|| pa.cmp(pb)))
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FatTree, FatTreeParams, Vl2, Vl2Params};

    fn k4_model() -> (FatTree, IntentModel) {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let im = IntentModel::from_routing(&ft).expect("healthy k=4 verifies clean");
        (ft, im)
    }

    #[test]
    fn build_refuses_broken_tables() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        rt.set_candidates(ft.agg(1, 0), ft.tor(1, 0), vec![]);
        let err = IntentModel::build(ft.topology(), &rt).unwrap_err();
        assert!(!err.is_clean());
    }

    #[test]
    fn path_sets_match_canonical_enumeration() {
        let (ft, im) = k4_model();
        for sp in 0..2u16 {
            for dp in 0..2u16 {
                let (src, dst) = (ft.host(0, sp as usize, 0), ft.host(3, dp as usize, 0));
                let canonical = ft.all_paths(src, dst);
                let st = ft.topology().host(src).tor;
                let dt = ft.topology().host(dst).tor;
                let mut enumerated = im.paths(st, dt);
                enumerated.sort_unstable();
                let mut want = canonical.clone();
                want.sort_unstable();
                assert_eq!(enumerated, want);
                assert_eq!(im.path_count(st, dt), canonical.len() as u64);
                for p in &canonical {
                    assert!(im.contains(st, dt, p));
                }
            }
        }
    }

    #[test]
    fn contains_rejects_detours_and_wrong_endpoints() {
        let (ft, im) = k4_model();
        let (t00, t01, t10) = (ft.tor(0, 0), ft.tor(0, 1), ft.tor(1, 0));
        let a00 = ft.agg(0, 0);
        // Intra-pod detour through the wrong rack.
        let detour = Path(vec![t00, a00, t01, ft.agg(0, 1), t00]);
        assert!(!im.contains(t00, t00, &detour));
        // Valid walk, wrong destination claim.
        let intra = Path(vec![t00, a00, t01]);
        assert!(im.contains(t00, t01, &intra));
        assert!(!im.contains(t00, t10, &intra));
        // Intra-rack.
        assert!(im.contains(t00, t00, &Path(vec![t00])));
        assert!(!im.contains(t00, t00, &Path(vec![t01])));
    }

    #[test]
    fn nearest_intended_shares_longest_prefix() {
        let (ft, im) = k4_model();
        let (t00, t10) = (ft.tor(0, 0), ft.tor(1, 0));
        let (a00, a10, a11) = (ft.agg(0, 0), ft.agg(1, 0), ft.agg(1, 1));
        let c0 = ft.core(0);
        // Observed detour that starts up the intended a00/c0 branch then
        // wanders: nearest intended path must keep that prefix.
        let observed = Path(vec![t00, a00, c0, a10, ft.tor(1, 1), a11, t10]);
        let near = im.nearest_intended(t00, t10, &observed).unwrap();
        assert_eq!(&near.0[..4], &[t00, a00, c0, a10]);
        assert_eq!(near.last(), Some(t10));
        assert!(im.contains(t00, t10, &near));
    }

    #[test]
    fn link_membership_counts_paths_per_link() {
        let (ft, im) = k4_model();
        let m = im.link_membership();
        // Total membership = sum over pairs of path_count × links per path.
        // Cross-check one uplink: t00→a00 carries every path from t00 that
        // resolves its first ECMP choice to a00: 1 (to t01) + 2 (to each of
        // the 6 remote ToRs) = 13.
        let (t00, a00) = (ft.tor(0, 0), ft.agg(0, 0));
        assert_eq!(m[&(t00, a00)], 13);
        // Down-links into a destination ToR carry all paths of remote pairs
        // routed through that agg: per (src pod ≠ 1) 2 paths via a10 × 6
        // remote ToRs... verify by DP instead: sum of memberships of
        // incoming links of t10 equals all multi-switch paths ending there.
        let t10 = ft.tor(1, 0);
        let incoming: u64 = m
            .iter()
            .filter(|((_, v), _)| *v == t10)
            .map(|(_, c)| c)
            .sum();
        let expected: u64 = im
            .tors()
            .iter()
            .filter(|&&s| s != t10)
            .map(|&s| im.path_count(s, t10))
            .sum();
        assert_eq!(incoming, expected);
    }

    #[test]
    fn vl2_model_counts_match_enumeration() {
        let v2 = Vl2::build(Vl2Params {
            da: 4,
            di: 4,
            hosts_per_tor: 2,
        });
        let im = IntentModel::from_routing(&v2).expect("healthy VL2 verifies clean");
        let (t0, t1) = (v2.tor(0), v2.tor(1));
        let enumerated = im.paths(t0, t1);
        assert_eq!(enumerated.len() as u64, im.path_count(t0, t1));
        let (src, dst) = (v2.host(0, 0), v2.host(1, 0));
        let mut canonical = v2.all_paths(src, dst);
        canonical.sort_unstable();
        assert_eq!(enumerated, canonical);
    }
}
