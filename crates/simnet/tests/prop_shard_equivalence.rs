//! Differential proof that the sharded engine is bit-identical to the
//! sequential reference: for arbitrary seeds, fault injections, load-
//! balance policies, tagging (controller punts + re-injection), and
//! traffic matrices with world feedback (echo replies), both engines must
//! produce the same [`SimStats`] (per-port counters, drop records, punts)
//! and the same per-packet trajectories (delivery order, uid, ground-truth
//! path, delivery time).
//!
//! Topology sizes: k = 4, 6, 8 fat-trees (5, 7, 9 switch shards).
//!
//! Inputs are kept deliberately small: the vendored proptest stub does
//! not shrink failures.

use pathdump_simnet::{
    CtrlApi, EngineKind, FaultState, HostApi, LoadBalance, NoTagging, Packet, Punt, SimConfig,
    SimStats, Simulator, TagHeaders, TagPolicy, World,
};
use pathdump_topology::{
    FatTree, FatTreeParams, FlowId, HostId, Nanos, PortNo, SwitchId, UpDownRouting,
};
use proptest::prelude::*;
use rand::Rng;

/// Pushes a tag at every switch, so multi-hop packets exceed the ASIC
/// limit and exercise the punt → controller → packet-out round trip
/// (cross-shard in both directions).
struct TagEveryHop;

impl TagPolicy for TagEveryHop {
    fn on_forward(&self, sw: SwitchId, _in: Option<PortNo>, _out: PortNo, h: &mut TagHeaders) {
        h.push_tag(sw.0 % 4096);
    }
}

/// A world that observes *and* reacts: every third delivered data packet
/// is echoed back to its sender, so the differential test also covers
/// edge-shard feedback into the fabric (uid allocation order, the shared
/// HostApi RNG stream, world-driven cross-shard sends). Punted packets are
/// stripped and re-injected, like the PathDump controller.
#[derive(Default)]
struct EchoWorld {
    delivered: Vec<(HostId, u64, Vec<SwitchId>, Nanos)>,
    punts: Vec<(SwitchId, u64, Nanos)>,
    rng_draws: Vec<u64>,
}

impl World for EchoWorld {
    fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet) {
        let host = api.host();
        self.delivered
            .push((host, pkt.uid, pkt.gt_path.clone(), api.now()));
        // Consume the shared edge RNG stream: a divergent world-call order
        // would desynchronize every later draw and fail loudly.
        self.rng_draws.push(api.rng().gen::<u64>() & 0xFF);
        if pkt.uid.is_multiple_of(3) && pkt.payload > 100 {
            let mut echo = Packet::data(0, pkt.flow.reversed(), 0, 40, api.now());
            echo.uid = api.alloc_uid();
            api.send(echo);
        }
    }

    fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}

    fn on_punt(&mut self, api: &mut CtrlApi<'_>, punt: Punt) {
        self.punts.push((punt.sw, punt.pkt.uid, api.now()));
        let mut pkt = punt.pkt;
        pkt.headers.strip();
        api.packet_out(punt.sw, punt.in_port, pkt);
    }
}

fn flow_of(ft: &FatTree, src: HostId, dst: HostId, sport: u16) -> FlowId {
    let t = ft.topology();
    FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
}

fn host_sel(ft: &FatTree, sel: (u8, u8, u8)) -> HostId {
    let k = ft.num_pods();
    let half = ft.half();
    ft.host(
        sel.0 as usize % k,
        sel.1 as usize % half,
        sel.2 as usize % half,
    )
}

/// (pod, tor, slot) selectors for one generated flow's endpoints + count.
type FlowSel = ((u8, u8, u8), (u8, u8, u8), u8);

/// One generated scenario.
#[derive(Clone, Debug)]
struct Scenario {
    k: u16,
    seed: u64,
    lb: u8,
    tagged: bool,
    faults: Vec<(u8, u8, u8)>, // (kind, selector a, selector b)
    flows: Vec<FlowSel>,
    /// `shard_workers`: 0 = inline windowed rounds, n ≥ 1 = persistent
    /// pool of n workers.
    workers: usize,
    /// `run_until` steps: 0 = the default coarse two-step run; n ≥ 2 =
    /// fine-grained stepping (n equal slices), exercising pool handoff
    /// and mid-window merges once per slice.
    steps: u8,
}

type Trajectories = Vec<(HostId, u64, Vec<SwitchId>, Nanos)>;
type Observed = (
    SimStats,
    Trajectories,
    Vec<(SwitchId, u64, Nanos)>,
    Vec<u64>,
);

fn run(sc: &Scenario, engine: EngineKind) -> Observed {
    let ft = FatTree::build(FatTreeParams { k: sc.k });
    let mut cfg = SimConfig::for_tests().with_engine(engine);
    cfg.seed = sc.seed;
    cfg.shard_workers = sc.workers;
    let tag: Box<dyn TagPolicy> = if sc.tagged {
        Box::new(TagEveryHop)
    } else {
        Box::new(NoTagging)
    };
    let mut sim = Simulator::new(&ft, cfg, tag, EchoWorld::default());
    assert_eq!(sim.effective_engine(), engine, "engine must not fall back");

    let half = ft.half();
    // Load-balance policy mix.
    match sc.lb % 3 {
        0 => {} // default ECMP
        1 => sim.set_lb_all(LoadBalance::Spray),
        _ => {
            sim.set_lb_all(LoadBalance::Spray);
            sim.set_lb(
                ft.tor(0, 0),
                LoadBalance::WeightedSpray((1..=half as u32).collect()),
            );
        }
    }
    // Fault injections: downed links, silent droppers, blackholes, NICs.
    for &(kind, a, b) in &sc.faults {
        let pod = a as usize % ft.num_pods();
        let pos = b as usize % half;
        match kind % 4 {
            0 => sim.set_link_down(ft.tor(pod, pos), ft.agg(pod, (pos + 1) % half), true),
            1 => sim.set_directed_fault(
                ft.agg(pod, pos),
                ft.tor(pod, (pos + 1) % half),
                FaultState {
                    silent_drop_rate: 0.25 + 0.5 * (a as f64 / 255.0),
                    ..FaultState::HEALTHY
                },
            ),
            2 => sim.set_directed_fault(
                ft.agg(pod, pos),
                ft.core(ft.core_index(pos, b as usize % half)),
                FaultState {
                    blackhole: true,
                    ..FaultState::HEALTHY
                },
            ),
            _ => sim.set_nic_fault(
                host_sel(&ft, (a, b, a)),
                FaultState {
                    silent_drop_rate: 0.5,
                    ..FaultState::HEALTHY
                },
            ),
        }
    }
    // Traffic.
    let mut sport = 2000u16;
    for &(s, d, n) in &sc.flows {
        let (src, dst) = (host_sel(&ft, s), host_sel(&ft, d));
        if src == dst {
            continue;
        }
        let f = flow_of(&ft, src, dst, sport);
        for _ in 0..(1 + n % 10) {
            let pkt = Packet::data(0, f, 0, 1000, sim.now());
            sim.send_from(src, pkt);
        }
        sport += 1;
    }
    let end = Nanos::from_millis(200);
    if sc.steps < 2 {
        // Two-step run: exercises the mid-stream boundary merge as well.
        sim.run_until(Nanos::from_millis(3));
        sim.run_until(end);
    } else {
        // Fine-grained stepping: every slice boundary is a full
        // park/dispatch round trip on the pooled engine.
        for i in 1..=sc.steps as u64 {
            sim.run_until(Nanos(end.0 * i / sc.steps as u64));
        }
        if sc.workers >= 1 && engine == EngineKind::Sharded {
            let st = sim.pool_stats();
            assert_eq!(
                st.spawned_total, st.threads as u64,
                "stepping must never respawn pool workers: {st:?}"
            );
            assert_eq!(st.batches, sc.steps as u64);
        }
    }
    let w = sim.world;
    (sim.stats, w.delivered, w.punts, w.rng_draws)
}

fn assert_equivalent(sc: &Scenario) -> Result<(), proptest::test_runner::TestCaseError> {
    let seq = run(sc, EngineKind::Sequential);
    let sha = run(sc, EngineKind::Sharded);
    prop_assert_eq!(&sha.1, &seq.1, "trajectories diverged: {:?}", sc);
    prop_assert_eq!(&sha.2, &seq.2, "punts diverged: {:?}", sc);
    prop_assert_eq!(&sha.3, &seq.3, "world rng draws diverged: {:?}", sc);
    prop_assert_eq!(&sha.0, &seq.0, "stats diverged: {:?}", sc);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// k=4: densest coverage of fault/LB/tagging mixes (inline driver).
    #[test]
    fn shard_equivalence_k4(
        seed in any::<u64>(),
        lb in 0u8..3,
        tagged in any::<bool>(),
        faults in proptest::collection::vec((0u8..4, 0u8..=255, 0u8..=255), 0..4),
        flows in proptest::collection::vec(
            ((0u8..=255, 0u8..=255, 0u8..=255), (0u8..=255, 0u8..=255, 0u8..=255), 0u8..=255),
            1..5,
        ),
    ) {
        let sc = Scenario { k: 4, seed, lb, tagged, faults, flows, workers: 0, steps: 0 };
        assert_equivalent(&sc)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// k=6 and k=8, alternating: larger fabrics, more shards.
    #[test]
    fn shard_equivalence_k6_k8(
        seed in any::<u64>(),
        big in any::<bool>(),
        lb in 0u8..3,
        tagged in any::<bool>(),
        faults in proptest::collection::vec((0u8..4, 0u8..=255, 0u8..=255), 0..3),
        flows in proptest::collection::vec(
            ((0u8..=255, 0u8..=255, 0u8..=255), (0u8..=255, 0u8..=255, 0u8..=255), 0u8..=255),
            1..4,
        ),
    ) {
        let sc = Scenario {
            k: if big { 8 } else { 6 },
            seed,
            lb,
            tagged,
            faults,
            flows,
            workers: 0,
            steps: 0,
        };
        assert_equivalent(&sc)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pooled-worker path (persistent threads + mailboxes + barriers) on
    /// k=4.
    #[test]
    fn shard_equivalence_threaded(
        seed in any::<u64>(),
        lb in 0u8..3,
        tagged in any::<bool>(),
        workers in 2usize..4,
        faults in proptest::collection::vec((0u8..4, 0u8..=255, 0u8..=255), 0..3),
        flows in proptest::collection::vec(
            ((0u8..=255, 0u8..=255, 0u8..=255), (0u8..=255, 0u8..=255, 0u8..=255), 0u8..=255),
            1..4,
        ),
    ) {
        let sc = Scenario { k: 4, seed, lb, tagged, faults, flows, workers, steps: 0 };
        assert_equivalent(&sc)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fine-grained stepping on the pooled engine (≥ 2 workers): many
    /// small `run_until` slices must reuse the same pool threads (the
    /// per-step spawn/join this suite used to pay is gone) and still be
    /// bit-identical to the sequential reference stepped the same way.
    #[test]
    fn shard_equivalence_pooled_stepping(
        seed in any::<u64>(),
        lb in 0u8..3,
        tagged in any::<bool>(),
        workers in 2usize..4,
        steps in 5u8..12,
        faults in proptest::collection::vec((0u8..4, 0u8..=255, 0u8..=255), 0..3),
        flows in proptest::collection::vec(
            ((0u8..=255, 0u8..=255, 0u8..=255), (0u8..=255, 0u8..=255, 0u8..=255), 0u8..=255),
            1..4,
        ),
    ) {
        let sc = Scenario { k: 4, seed, lb, tagged, faults, flows, workers, steps };
        assert_equivalent(&sc)?;
    }
}
