//! Failure injection and switch quirks.
//!
//! Every anomaly the paper debugs is injected here: link failures (Fig. 4),
//! deliberately skewed load balancing (Figs. 5/6), silent random drops
//! (Figs. 7/8), blackholes (§4.4), and forwarding misconfigurations that
//! create routing loops (Fig. 9).

use pathdump_topology::{FlowId, PortNo, RouteTables, SwitchId};
use serde::{Deserialize, Serialize};

/// Fault state of one *directed* link egress (switch port or host NIC).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FaultState {
    /// Link administratively/physically down. Routing avoids it; packets
    /// already queued are dropped (visible to counters).
    pub down: bool,
    /// Probability that the egress interface silently discards a packet
    /// *without* updating the discarded-packet counters (§2.3 "silent
    /// random packet drops").
    pub silent_drop_rate: f64,
    /// Silently drop every packet (a blackholed link, §4.4).
    pub blackhole: bool,
}

impl FaultState {
    /// A healthy link.
    pub const HEALTHY: FaultState = FaultState {
        down: false,
        silent_drop_rate: 0.0,
        blackhole: false,
    };

    /// Returns true if this link can be used by forwarding.
    pub fn usable(&self) -> bool {
        !self.down
    }
}

/// How a switch picks one egress among equal-cost candidates.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub enum LoadBalance {
    /// Flow-level ECMP: FNV hash of the 5-tuple with a per-switch salt.
    #[default]
    Ecmp,
    /// Per-packet spraying, uniform among candidates (§4.2).
    Spray,
    /// Per-packet spraying with per-candidate weights — the deliberately
    /// imbalanced configuration of Figure 6. Weights align positionally
    /// with the candidate list.
    WeightedSpray(Vec<u32>),
}

/// A forwarding misbehavior installed on one switch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Quirk {
    /// Force packets of a specific flow out of a fixed port — the building
    /// block for routing-loop scenarios (Fig. 9) and targeted reroutes.
    ForwardFlowTo {
        /// The affected flow.
        flow: FlowId,
        /// Egress override.
        port: PortNo,
    },
    /// Force *all* transit packets out of a fixed port.
    ForwardAllTo {
        /// Egress override.
        port: PortNo,
    },
    /// The Figure 5 "poor hash function": flows larger than `threshold`
    /// bytes all hash onto `big_port`, the rest onto `small_port`.
    /// (The paper configures its SAgg testbed switch exactly this way.)
    SizeBasedSplit {
        /// Flow-size threshold in bytes (1 MB in the paper).
        threshold: u64,
        /// Egress for large flows ("link 1").
        big_port: PortNo,
        /// Egress for small flows ("link 2").
        small_port: PortNo,
    },
}

/// A *route-table* misconfiguration: a persistent edit of the installed
/// forwarding rules, as opposed to [`Quirk`]s (per-packet egress overrides)
/// and [`FaultState`]s (per-link health).
///
/// Misconfigurations rewrite the candidate sets the switch consults, so
/// they are visible to static analysis (`pathdump_verifier`) — the point of
/// the differential tests: the verifier must flag the same rule the
/// dataplane then misbehaves on. They deliberately do *not* touch fault
/// state or drop accounting: a packet misrouted by a bad rule that then
/// dies on a faulty link is staged in the drop log exactly once, by the
/// fault machinery.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Misconfig {
    /// Replace the rule at `sw` toward `dst_tor` with the single `port` —
    /// e.g. a host-facing port (misdelivery) or a wrong uplink.
    WrongPort {
        /// Switch holding the rewritten rule.
        sw: SwitchId,
        /// Destination ToR of the rule.
        dst_tor: SwitchId,
        /// The (wrong) sole candidate.
        port: PortNo,
    },
    /// Remove one member from the ECMP group at `sw` toward `dst_tor`.
    /// Pruning the last member leaves an empty rule — a blackhole the
    /// dataplane papers over with a failover bounce.
    PruneCandidate {
        /// Switch holding the pruned group.
        sw: SwitchId,
        /// Destination ToR of the rule.
        dst_tor: SwitchId,
        /// The member to remove.
        port: PortNo,
    },
    /// Transpose the rules for two destinations at one switch — swapped
    /// downlinks/uplinks after a miscabled maintenance window.
    SwapRules {
        /// Switch holding the transposed rules.
        sw: SwitchId,
        /// First destination ToR.
        dst_a: SwitchId,
        /// Second destination ToR.
        dst_b: SwitchId,
    },
    /// Point the rule at `sw` toward `dst_tor` at `wrong_port`, chosen so
    /// traffic re-ascends the fabric — the cross-pod routing-loop shape of
    /// Fig. 9 (identical mechanics to [`Misconfig::WrongPort`]; kept
    /// distinct so scenarios and verdicts name the class).
    CrossPodLoop {
        /// Switch holding the looping rule.
        sw: SwitchId,
        /// Destination ToR of the rule.
        dst_tor: SwitchId,
        /// Egress that sends traffic back up/across.
        wrong_port: PortNo,
    },
}

impl Misconfig {
    /// Applies the misconfiguration to installed route tables.
    pub fn apply(&self, tables: &mut RouteTables) {
        match *self {
            Misconfig::WrongPort { sw, dst_tor, port }
            | Misconfig::CrossPodLoop {
                sw,
                dst_tor,
                wrong_port: port,
            } => tables.set_candidates(sw, dst_tor, vec![port]),
            Misconfig::PruneCandidate { sw, dst_tor, port } => {
                tables.remove_candidate(sw, dst_tor, port);
            }
            Misconfig::SwapRules { sw, dst_a, dst_b } => tables.swap_rules(sw, dst_a, dst_b),
        }
    }

    /// The switch whose rules the misconfiguration touches.
    pub fn switch(&self) -> SwitchId {
        match *self {
            Misconfig::WrongPort { sw, .. }
            | Misconfig::PruneCandidate { sw, .. }
            | Misconfig::SwapRules { sw, .. }
            | Misconfig::CrossPodLoop { sw, .. } => sw,
        }
    }
}

/// The set of quirks installed on one switch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SwitchQuirks {
    quirks: Vec<Quirk>,
}

impl SwitchQuirks {
    /// Installs a quirk (later quirks take precedence over earlier ones).
    pub fn install(&mut self, q: Quirk) {
        self.quirks.push(q);
    }

    /// Removes all quirks.
    pub fn clear(&mut self) {
        self.quirks.clear();
    }

    /// Returns true if no quirks are installed.
    pub fn is_empty(&self) -> bool {
        self.quirks.is_empty()
    }

    /// Resolves the egress override for a packet, if any quirk applies.
    ///
    /// `up_candidates` tells the size-based splitter whether the packet is
    /// at its split point (it only overrides when both of its ports are
    /// among the candidates).
    pub fn resolve(
        &self,
        flow: &FlowId,
        flow_size_hint: u64,
        candidates: &[PortNo],
    ) -> Option<PortNo> {
        for q in self.quirks.iter().rev() {
            match q {
                Quirk::ForwardFlowTo { flow: f, port } if f == flow => return Some(*port),
                Quirk::ForwardAllTo { port } => return Some(*port),
                Quirk::SizeBasedSplit {
                    threshold,
                    big_port,
                    small_port,
                } if candidates.contains(big_port) && candidates.contains(small_port) => {
                    return Some(if flow_size_hint > *threshold {
                        *big_port
                    } else {
                        *small_port
                    });
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::Ip;

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    #[test]
    fn fault_defaults_healthy() {
        let f = FaultState::default();
        assert!(f.usable());
        assert_eq!(f.silent_drop_rate, 0.0);
        assert!(!f.blackhole);
    }

    #[test]
    fn flow_override_matches_exact_flow() {
        let mut q = SwitchQuirks::default();
        q.install(Quirk::ForwardFlowTo {
            flow: flow(1),
            port: PortNo(7),
        });
        assert_eq!(q.resolve(&flow(1), 0, &[]), Some(PortNo(7)));
        assert_eq!(q.resolve(&flow(2), 0, &[]), None);
    }

    #[test]
    fn size_split_honors_threshold() {
        let mut q = SwitchQuirks::default();
        q.install(Quirk::SizeBasedSplit {
            threshold: 1_000_000,
            big_port: PortNo(2),
            small_port: PortNo(3),
        });
        let cands = [PortNo(2), PortNo(3)];
        assert_eq!(q.resolve(&flow(1), 2_000_000, &cands), Some(PortNo(2)));
        assert_eq!(q.resolve(&flow(1), 999, &cands), Some(PortNo(3)));
        // Not at the split point: no override.
        assert_eq!(q.resolve(&flow(1), 2_000_000, &[PortNo(0)]), None);
    }

    #[test]
    fn misconfig_apply_edits_route_tables() {
        use pathdump_topology::{FatTree, FatTreeParams};
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut rt = RouteTables::build(&ft);
        let (t00, t10, t11, a10) = (ft.tor(0, 0), ft.tor(1, 0), ft.tor(1, 1), ft.agg(1, 0));

        let wrong = Misconfig::WrongPort {
            sw: t00,
            dst_tor: t10,
            port: PortNo(0),
        };
        assert_eq!(wrong.switch(), t00);
        wrong.apply(&mut rt);
        assert_eq!(rt.candidates_to_tor(t00, t10), &[PortNo(0)]);

        Misconfig::PruneCandidate {
            sw: t00,
            dst_tor: t11,
            port: PortNo(2),
        }
        .apply(&mut rt);
        assert_eq!(rt.candidates_to_tor(t00, t11), &[PortNo(3)]);

        let before_a = rt.candidates_to_tor(a10, t10).to_vec();
        let before_b = rt.candidates_to_tor(a10, t11).to_vec();
        Misconfig::SwapRules {
            sw: a10,
            dst_a: t10,
            dst_b: t11,
        }
        .apply(&mut rt);
        assert_eq!(rt.candidates_to_tor(a10, t10), before_b.as_slice());
        assert_eq!(rt.candidates_to_tor(a10, t11), before_a.as_slice());

        // CrossPodLoop is WrongPort mechanics under a class-specific name.
        Misconfig::CrossPodLoop {
            sw: ft.core(0),
            dst_tor: t00,
            wrong_port: PortNo(1),
        }
        .apply(&mut rt);
        assert_eq!(rt.candidates_to_tor(ft.core(0), t00), &[PortNo(1)]);
    }

    #[test]
    fn later_quirks_take_precedence() {
        let mut q = SwitchQuirks::default();
        q.install(Quirk::ForwardAllTo { port: PortNo(1) });
        q.install(Quirk::ForwardFlowTo {
            flow: flow(9),
            port: PortNo(5),
        });
        assert_eq!(q.resolve(&flow(9), 0, &[]), Some(PortNo(5)));
        assert_eq!(q.resolve(&flow(8), 0, &[]), Some(PortNo(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.resolve(&flow(9), 0, &[]), None);
    }
}
