//! Simulation configuration.

use pathdump_topology::{Nanos, MICROS, MILLIS};
use serde::{Deserialize, Serialize};

/// Parameters of one link class (switch-to-switch or host NIC).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub prop_delay: Nanos,
    /// Egress queue capacity in packets (tail-drop beyond this).
    pub queue_pkts: usize,
}

impl LinkConfig {
    /// Serialization delay for `bytes` at this link's rate.
    pub fn tx_time(&self, bytes: u32) -> Nanos {
        // ns = bytes * 8 * 1e9 / rate_bps.
        Nanos((bytes as u64 * 8 * 1_000_000_000) / self.rate_bps)
    }
}

/// Which event-loop engine drives the simulation.
///
/// Both engines produce **bit-identical** results (stats, drop logs,
/// per-packet trajectories, world observations) — the choice only affects
/// how the event schedule is executed. See `sim.rs` module docs for the
/// design and `tests/prop_shard_equivalence.rs` for the differential proof.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// One global `(time, key)` scan over all shard queues, single thread.
    #[default]
    Sequential,
    /// Conservative parallel discrete-event simulation: one shard per
    /// fat-tree pod plus a core shard and the host/controller edge shard,
    /// synchronized on lookahead windows bounded by the minimum cross-shard
    /// latency. Falls back to the sequential driver when the topology or
    /// the configured latencies leave no usable lookahead.
    Sharded,
}

/// Global simulator configuration.
///
/// Defaults model the paper's commodity testbed with one deliberate
/// substitution: link rates are scaled from 1 GbE to 100 Mb/s so that
/// packet-level simulation of multi-minute experiments stays tractable;
/// load *fractions* and protocol timing constants are preserved, which is
/// what the reproduced figures depend on (see DESIGN.md §3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Switch-to-switch links.
    pub fabric_link: LinkConfig,
    /// Host NIC links.
    pub host_link: LinkConfig,
    /// Number of VLAN tags the switch ASIC parses at line rate (QinQ = 2).
    /// A packet carrying more is punted to the controller (§3.1).
    pub asic_tag_limit: usize,
    /// Slow-path latency for punting a packet to the controller (switch
    /// CPU plus control channel). Calibrated so Figure 9's 4-hop loop
    /// detection lands near the paper's ~47 ms.
    pub punt_latency: Nanos,
    /// Latency for a controller packet-out back into a switch.
    pub packet_out_latency: Nanos,
    /// Initial IP TTL (backstop against infinite loops).
    pub ttl: u8,
    /// RNG seed (sprayed egress picks, fault coin flips).
    pub seed: u64,
    /// Keep a log of individual drop events (tests/small runs only).
    pub collect_drop_log: bool,
    /// Record ground-truth trajectories on packets (verification; small
    /// per-packet cost).
    pub record_ground_truth: bool,
    /// Which event-loop engine executes the schedule (results identical).
    pub engine: EngineKind,
    /// Worker threads for the sharded engine: `0` = inline windowed rounds
    /// on the calling thread (no threads, deterministic cost — the right
    /// mode for single-core boxes and stepping harnesses), `n >= 1` = a
    /// **persistent pool** of `min(n, switch shards)` worker threads
    /// driving the switch shards while the calling thread drives the
    /// host/controller edge shard. The mapping is normalized in one place
    /// ([`SimConfig::worker_mode`]); results are bit-identical either way.
    pub shard_workers: usize,
}

/// Normalized execution mode of the sharded engine — the single source of
/// truth for what [`SimConfig::shard_workers`] means, so engine refactors
/// cannot silently change its interpretation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerMode {
    /// Every shard runs windowed rounds on the calling thread.
    Inline,
    /// This many persistent pool workers (≥ 1, already clamped to the
    /// switch-shard count) drive the switch shards; the calling thread
    /// drives the edge shard.
    Pool(usize),
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fabric_link: LinkConfig {
                rate_bps: 100_000_000,
                prop_delay: Nanos(2 * MICROS),
                queue_pkts: 64,
            },
            host_link: LinkConfig {
                rate_bps: 100_000_000,
                prop_delay: Nanos(MICROS),
                queue_pkts: 128,
            },
            asic_tag_limit: 2,
            punt_latency: Nanos(40 * MILLIS),
            packet_out_latency: Nanos(2 * MILLIS),
            ttl: 64,
            seed: 0xDEB6_0001,
            collect_drop_log: false,
            record_ground_truth: true,
            engine: EngineKind::Sequential,
            shard_workers: 0,
        }
    }
}

impl SimConfig {
    /// A configuration suited to unit/integration tests: small queues,
    /// drop logging, fixed seed.
    pub fn for_tests() -> Self {
        SimConfig {
            collect_drop_log: true,
            ..SimConfig::default()
        }
    }

    /// The same configuration running on the given engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Validates and normalizes `shard_workers` for a topology with
    /// `switch_shards` switch shards: `0` → [`WorkerMode::Inline`], `n ≥ 1`
    /// → [`WorkerMode::Pool`] of `min(n, switch_shards)` workers (more
    /// workers than shards would idle every round).
    pub fn worker_mode(&self, switch_shards: usize) -> WorkerMode {
        match self.shard_workers {
            0 => WorkerMode::Inline,
            n => WorkerMode::Pool(n.min(switch_shards.max(1))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_math() {
        let l = LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay: Nanos(1000),
            queue_pkts: 8,
        };
        // 1500 B at 1 Gbps = 12 us.
        assert_eq!(l.tx_time(1500), Nanos(12_000));
        // 125 bytes at 1 Gbps = 1 us.
        assert_eq!(l.tx_time(125), Nanos(1_000));
    }

    #[test]
    fn default_sane() {
        let c = SimConfig::default();
        assert_eq!(c.asic_tag_limit, 2);
        assert!(c.punt_latency > c.packet_out_latency);
    }

    /// The normalization contract the pool refactor must not change:
    /// `0` means inline, `n ≥ 1` means a pool clamped to the shard count.
    #[test]
    fn worker_mode_normalization() {
        let mut c = SimConfig {
            shard_workers: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.worker_mode(5), WorkerMode::Inline);
        c.shard_workers = 1;
        assert_eq!(c.worker_mode(5), WorkerMode::Pool(1));
        c.shard_workers = 3;
        assert_eq!(c.worker_mode(5), WorkerMode::Pool(3));
        // More workers than switch shards clamp down: extras would idle.
        c.shard_workers = 64;
        assert_eq!(c.worker_mode(5), WorkerMode::Pool(5));
        // Degenerate plans still resolve to at least one worker.
        c.shard_workers = 2;
        assert_eq!(c.worker_mode(0), WorkerMode::Pool(1));
    }
}
