//! Simulation configuration.

use pathdump_topology::{Nanos, MICROS, MILLIS};
use serde::{Deserialize, Serialize};

/// Parameters of one link class (switch-to-switch or host NIC).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub prop_delay: Nanos,
    /// Egress queue capacity in packets (tail-drop beyond this).
    pub queue_pkts: usize,
}

impl LinkConfig {
    /// Serialization delay for `bytes` at this link's rate.
    pub fn tx_time(&self, bytes: u32) -> Nanos {
        // ns = bytes * 8 * 1e9 / rate_bps.
        Nanos((bytes as u64 * 8 * 1_000_000_000) / self.rate_bps)
    }
}

/// Global simulator configuration.
///
/// Defaults model the paper's commodity testbed with one deliberate
/// substitution: link rates are scaled from 1 GbE to 100 Mb/s so that
/// packet-level simulation of multi-minute experiments stays tractable;
/// load *fractions* and protocol timing constants are preserved, which is
/// what the reproduced figures depend on (see DESIGN.md §3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Switch-to-switch links.
    pub fabric_link: LinkConfig,
    /// Host NIC links.
    pub host_link: LinkConfig,
    /// Number of VLAN tags the switch ASIC parses at line rate (QinQ = 2).
    /// A packet carrying more is punted to the controller (§3.1).
    pub asic_tag_limit: usize,
    /// Slow-path latency for punting a packet to the controller (switch
    /// CPU plus control channel). Calibrated so Figure 9's 4-hop loop
    /// detection lands near the paper's ~47 ms.
    pub punt_latency: Nanos,
    /// Latency for a controller packet-out back into a switch.
    pub packet_out_latency: Nanos,
    /// Initial IP TTL (backstop against infinite loops).
    pub ttl: u8,
    /// RNG seed (sprayed egress picks, fault coin flips).
    pub seed: u64,
    /// Keep a log of individual drop events (tests/small runs only).
    pub collect_drop_log: bool,
    /// Record ground-truth trajectories on packets (verification; small
    /// per-packet cost).
    pub record_ground_truth: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fabric_link: LinkConfig {
                rate_bps: 100_000_000,
                prop_delay: Nanos(2 * MICROS),
                queue_pkts: 64,
            },
            host_link: LinkConfig {
                rate_bps: 100_000_000,
                prop_delay: Nanos(MICROS),
                queue_pkts: 128,
            },
            asic_tag_limit: 2,
            punt_latency: Nanos(40 * MILLIS),
            packet_out_latency: Nanos(2 * MILLIS),
            ttl: 64,
            seed: 0xDEB6_0001,
            collect_drop_log: false,
            record_ground_truth: true,
        }
    }
}

impl SimConfig {
    /// A configuration suited to unit/integration tests: small queues,
    /// drop logging, fixed seed.
    pub fn for_tests() -> Self {
        SimConfig {
            collect_drop_log: true,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_math() {
        let l = LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay: Nanos(1000),
            queue_pkts: 8,
        };
        // 1500 B at 1 Gbps = 12 us.
        assert_eq!(l.tx_time(1500), Nanos(12_000));
        // 125 bytes at 1 Gbps = 1 us.
        assert_eq!(l.tx_time(125), Nanos(1_000));
    }

    #[test]
    fn default_sane() {
        let c = SimConfig::default();
        assert_eq!(c.asic_tag_limit, 2);
        assert!(c.punt_latency > c.packet_out_latency);
    }
}
