//! The discrete-event simulator: switches with match-action forwarding,
//! output-queued ports, fault injection, tag policies, and the controller
//! slow path.
//!
//! # Engine architecture: pod sharding with conservative lookahead
//!
//! [`Simulator`] is a facade over two interchangeable event-loop engines
//! selected by [`SimConfig::engine`]:
//!
//! * **Sequential** — one thread pops the globally earliest event across
//!   all shard queues (the reference engine), ordered by a tournament
//!   tree over the per-shard queue heads.
//! * **Sharded** — conservative parallel DES: the fabric is partitioned
//!   into one shard per fat-tree pod plus a core shard (see
//!   [`crate::shard::ShardPlan`]), while hosts, NICs, timers, the
//!   [`World`] and the controller form the *edge shard* driven by the
//!   calling thread. Shards run windowed rounds: each round every shard
//!   publishes the time of its earliest pending event, and then safely
//!   processes everything strictly below its *horizon* — the minimum over
//!   other shards of `their earliest event + the minimum latency of any
//!   message they could send here`. Cross-shard packets travel through
//!   mailboxes, spliced per destination shard once per window and drained
//!   at the next window barrier. The minimum cross-shard latency
//!   (fabric/host propagation, punt and packet-out latency) is the
//!   lookahead bound; if any is zero the facade silently falls back to the
//!   sequential driver.
//!
//! The sharded engine executes in one of two modes, normalized from
//! [`SimConfig::shard_workers`] by [`SimConfig::worker_mode`]: **inline**
//! (`0` — every shard's rounds run on the calling thread) or **pooled**
//! (`n ≥ 1` — a persistent worker pool, spawned once and parked between
//! runs, drives the switch shards while the calling thread drives the
//! edge shard). All three execution paths are the *same* round loop,
//! `driver::drive_windowed_rounds`, parameterized over a synchronization
//! executor — the barrier structure is enforced by the type, not by
//! keeping hand-written loops in sync.
//!
//! # Determinism: both engines are bit-identical
//!
//! Three mechanisms make the engines produce *exactly* the same stats,
//! drop logs, per-packet trajectories, and world observations:
//!
//! 1. **Causal event keys** ([`crate::event::KeyGen`]): ties at equal
//!    timestamps sort on a key derived from the creating event's key plus
//!    a birth index — a pure function of causal history rather than of
//!    queue insertion order, so both engines sort ties identically.
//! 2. **Partitioned RNG streams**: every switch owns an RNG stream (spray
//!    picks, silent-drop coins) and the edge shard owns one (NIC coins,
//!    [`HostApi::rng`]); each stream is consumed only by events of its
//!    shard, which both engines dispatch in the same `(time, key)` order.
//! 3. **Ordered merges**: per-shard drop-log staging buffers merge on
//!    `(time, creating key, birth)` at the end of every run call, and
//!    per-shard event counters/clocks merge by sum/max — independent of
//!    scheduling.
//!
//! Because the handlers are one shared code path and every side effect is
//! either shard-local or merged deterministically, any conservative
//! schedule yields the same results; `tests/prop_shard_equivalence.rs`
//! differentially pins this across topologies, faults, and LB policies.
//!
//! # Observation granularity
//!
//! [`Simulator::now`] and [`Simulator::pending_events`] report the merged
//! global view: the clock is the maximum processed event time (clamped up
//! to the `run_until` horizon) and pending counts sum all shard queues.
//! Both are exact whenever `run_until` has returned — the window barrier
//! guarantees no event at or before the horizon is still buffered — so
//! harnesses stepping the simulation observe identical values on either
//! engine even when a step boundary lands mid-flight ("mid-window").

use crate::config::{EngineKind, SimConfig, WorkerMode};
use crate::driver::{drive_windowed_rounds, seq_drive, ExchangeSync, InlineSync, LaneCtx, Net};
use crate::event::{mix64, EventEntry, EventKind, EventQueue, KeyGen};
use crate::fault::{FaultState, LoadBalance, Misconfig, Quirk, SwitchQuirks};
use crate::packet::Packet;
use crate::pool::{Job, PoolStats, WorkerPool};
use crate::shard::{Exchange, Outgoing, ShardPlan};
use crate::stats::{DropReason, DropRecord, SimStats, DROP_LOG_CAP};
use crate::stats::{LinkCounters, SwitchCounters};
use crate::traits::{CtrlAction, CtrlApi, HostAction, HostApi, Punt, TagPolicy, World};
use pathdump_topology::{
    ecmp_hash, HostId, Nanos, Peer, PortNo, RouteTables, SwitchId, Tier, Topology, UpDownRouting,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Salt for per-switch RNG streams (`seed ^ (BASE + switch index)`).
const SWITCH_STREAM_BASE: u64 = 0x5357_0000_0000_0000;
/// Salt for the edge-shard RNG stream.
const EDGE_STREAM_SALT: u64 = 0xED6E_0000_0000_0001;
/// Salt for root event keys (facade injections).
const ROOT_KEY_BASE: u64 = 0x4007_0000_0000_0000;

/// One egress queue (switch port or host NIC).
#[derive(Debug, Default)]
struct PortState {
    q: VecDeque<Packet>,
    busy: bool,
    fault: FaultState,
}

/// Dynamic state of one switch.
#[derive(Debug)]
struct SwitchState {
    lb: LoadBalance,
    quirks: SwitchQuirks,
    ports: Vec<PortState>,
}

/// A drop-log entry staged in a shard buffer, carrying the merge key
/// (time, key of the event that caused it, birth index within that event).
struct KeyedDrop {
    at: Nanos,
    parent: u64,
    birth: u64,
    rec: DropRecord,
}

/// Stages a drop record into a shard buffer.
fn stage_drop(
    drops: &mut Vec<KeyedDrop>,
    enabled: bool,
    at: Nanos,
    kg: &mut KeyGen,
    rec: DropRecord,
) {
    if enabled && drops.len() < DROP_LOG_CAP {
        let birth = kg.next_birth();
        drops.push(KeyedDrop {
            at,
            parent: kg.parent(),
            birth,
            rec,
        });
    }
}

// ---------------------------------------------------------------------------
// Switch shards: the fabric dataplane.
// ---------------------------------------------------------------------------

/// Mutable state of one switch shard, borrowed from the facade for the
/// duration of one run call. `switches[local]` etc. are indexed by the
/// shard-local rank from [`ShardPlan::local_of_switch`].
struct SwitchCtx<'a> {
    shard: usize,
    switches: Vec<&'a mut SwitchState>,
    rngs: Vec<&'a mut SmallRng>,
    sw_stats: Vec<&'a mut SwitchCounters>,
    port_stats: Vec<&'a mut Vec<LinkCounters>>,
    queue: &'a mut EventQueue,
    drops: &'a mut Vec<KeyedDrop>,
    events: u64,
    max_t: Nanos,
    /// Reusable buffer for per-packet usable-egress filtering (hot path;
    /// avoids a heap allocation per switch hop).
    usable_buf: Vec<PortNo>,
}

/// Schedules a derived event created by shard `shard`: shard-local ones
/// go straight onto that shard's queue, cross-shard ones into the
/// outgoing buffer. One shared routing/key-assignment path for both the
/// switch and edge contexts — the engines' bit-identity depends on it.
fn emit_event(
    net: &Net,
    shard: usize,
    queue: &mut EventQueue,
    at: Nanos,
    kg: &mut KeyGen,
    kind: EventKind,
    out: &mut Vec<Outgoing>,
) {
    let key = kg.next_key();
    let dest = net.plan.dest_shard(&kind);
    if dest == shard {
        queue.push_keyed(at, key, kind);
    } else {
        out.push(Outgoing {
            shard: dest,
            at,
            key,
            kind,
        });
    }
}

impl SwitchCtx<'_> {
    /// Schedules a derived event: shard-local ones go straight onto the
    /// local queue, cross-shard ones into the outgoing buffer.
    fn emit(
        &mut self,
        net: &Net,
        at: Nanos,
        kg: &mut KeyGen,
        kind: EventKind,
        out: &mut Vec<Outgoing>,
    ) {
        emit_event(net, self.shard, self.queue, at, kg, kind, out);
    }

    fn dispatch(&mut self, net: &Net, ev: EventEntry, out: &mut Vec<Outgoing>) {
        self.events += 1;
        if ev.at > self.max_t {
            self.max_t = ev.at;
        }
        let mut kg = KeyGen::new(ev.seq);
        match ev.kind {
            EventKind::SwitchRx { sw, in_port, pkt } => {
                self.handle_switch_rx(net, ev.at, &mut kg, sw, in_port, pkt, out)
            }
            EventKind::PortTx { sw, port } => {
                self.handle_port_tx(net, ev.at, &mut kg, sw, port, out)
            }
            _ => unreachable!("edge event routed to a switch shard"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_switch_rx(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        sw: SwitchId,
        in_port: Option<PortNo>,
        mut pkt: Packet,
        out: &mut Vec<Outgoing>,
    ) {
        let li = net.plan.local_of_switch[sw.index()];
        self.sw_stats[li].rx_pkts += 1;
        if net.cfg.record_ground_truth {
            pkt.gt_path.push(sw);
        }

        // ASIC limit: a packet carrying more tags than the ASIC parses
        // triggers a rule miss and goes to the controller (§3.1).
        if pkt.headers.tag_count() > net.cfg.asic_tag_limit {
            self.sw_stats[li].punts += 1;
            let punt = Punt {
                sw,
                in_port,
                pkt,
                punted_at: now,
            };
            self.emit(
                net,
                now.saturating_add(net.cfg.punt_latency),
                kg,
                EventKind::CtrlRx { punt },
                out,
            );
            return;
        }

        if pkt.ttl == 0 {
            self.sw_stats[li].ttl_drops += 1;
            let rec = DropRecord {
                time: now,
                sw: Some(sw),
                port: in_port,
                reason: DropReason::TtlExpired,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            stage_drop(self.drops, net.cfg.collect_drop_log, now, kg, rec);
            return;
        }
        pkt.ttl -= 1;

        let Some(dst_host) = net.topo.host_by_ip(pkt.flow.dst_ip) else {
            self.drop_no_route(net, now, kg, sw, &pkt);
            return;
        };
        let (dst_tor, dst_port) = {
            let hm = net.topo.host(dst_host);
            (hm.tor, hm.tor_port)
        };

        // Canonical candidates under healthy up-down routing, borrowed
        // from the route tables — the forwarding hot path allocates
        // nothing per hop.
        let single = [dst_port];
        let candidates: &[PortNo] = if dst_tor == sw {
            &single
        } else {
            net.routes.candidates_to_tor(sw, dst_tor)
        };

        // Quirks (misconfigurations) override routing entirely.
        let quirk_pick =
            self.switches[li]
                .quirks
                .resolve(&pkt.flow, pkt.flow_size_hint, candidates);

        let out_port = match quirk_pick {
            Some(p) => Some(p),
            None => {
                let mut usable = std::mem::take(&mut self.usable_buf);
                usable.clear();
                usable.extend(
                    candidates
                        .iter()
                        .copied()
                        .filter(|p| self.switches[li].ports[p.index()].fault.usable()),
                );
                let pick = if !usable.is_empty() {
                    self.pick_egress(li, sw, candidates, &usable, &pkt)
                } else {
                    // Failover: bounce out of a usable switch-facing port
                    // other than the ingress (the "simple failover mechanism"
                    // of §4.1's testbed), preferring lower-tier peers — a
                    // bounce toward the edge keeps the detour inside the pod
                    // where an alternate up-path exists.
                    let rank = |t: Tier| match t {
                        Tier::Tor => 0u8,
                        Tier::Agg => 1,
                        Tier::Core => 2,
                    };
                    let own_rank = rank(net.topo.switch(sw).tier);
                    let all: Vec<(PortNo, u8)> = net
                        .topo
                        .switch_neighbors(sw)
                        .into_iter()
                        .filter(|(p, _)| {
                            Some(*p) != in_port && self.switches[li].ports[p.index()].fault.usable()
                        })
                        .map(|(p, nb)| (p, rank(net.topo.switch(nb).tier)))
                        .collect();
                    let lower: Vec<PortNo> = all
                        .iter()
                        .filter(|(_, r)| *r < own_rank)
                        .map(|(p, _)| *p)
                        .collect();
                    let fallback: Vec<PortNo> = if lower.is_empty() {
                        all.into_iter().map(|(p, _)| p).collect()
                    } else {
                        lower
                    };
                    self.pick_egress(li, sw, &fallback, &fallback, &pkt)
                };
                self.usable_buf = usable;
                pick
            }
        };

        let Some(out_port) = out_port else {
            self.drop_no_route(net, now, kg, sw, &pkt);
            return;
        };

        // Trajectory tagging (push_vlan and friends) happens as part of the
        // forwarding action set.
        net.tag.on_forward(sw, in_port, out_port, &mut pkt.headers);

        self.switch_enqueue(net, now, kg, sw, out_port, pkt, out);
    }

    /// Picks one egress among `usable` (all drawn from `canonical`, whose
    /// order anchors WeightedSpray weights).
    fn pick_egress(
        &mut self,
        li: usize,
        sw: SwitchId,
        canonical: &[PortNo],
        usable: &[PortNo],
        pkt: &Packet,
    ) -> Option<PortNo> {
        if usable.is_empty() {
            return None;
        }
        if usable.len() == 1 {
            return Some(usable[0]);
        }
        let rng = &mut *self.rngs[li];
        match &self.switches[li].lb {
            LoadBalance::Ecmp => {
                let salt = 0x9E37_79B9_7F4A_7C15u64 ^ (sw.0 as u64);
                let h = ecmp_hash(&pkt.flow, salt);
                Some(usable[(h % usable.len() as u64) as usize])
            }
            LoadBalance::Spray => {
                let i = rng.gen_range(0..usable.len());
                Some(usable[i])
            }
            LoadBalance::WeightedSpray(weights) => {
                let w: Vec<u64> = usable
                    .iter()
                    .map(|p| {
                        canonical
                            .iter()
                            .position(|c| c == p)
                            .and_then(|i| weights.get(i))
                            .copied()
                            .unwrap_or(1) as u64
                    })
                    .collect();
                let total: u64 = w.iter().sum::<u64>().max(1);
                let mut x = rng.gen_range(0..total);
                for (i, wi) in w.iter().enumerate() {
                    if x < *wi {
                        return Some(usable[i]);
                    }
                    x -= wi;
                }
                Some(*usable.last().expect("non-empty"))
            }
        }
    }

    fn drop_no_route(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        sw: SwitchId,
        pkt: &Packet,
    ) {
        let li = net.plan.local_of_switch[sw.index()];
        self.sw_stats[li].no_route_drops += 1;
        let rec = DropRecord {
            time: now,
            sw: Some(sw),
            port: None,
            reason: DropReason::NoRoute,
            flow: pkt.flow,
            uid: pkt.uid,
        };
        stage_drop(self.drops, net.cfg.collect_drop_log, now, kg, rec);
    }

    #[allow(clippy::too_many_arguments)]
    fn switch_enqueue(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        sw: SwitchId,
        port: PortNo,
        pkt: Packet,
        out: &mut Vec<Outgoing>,
    ) {
        let li = net.plan.local_of_switch[sw.index()];
        let cap = net.cfg.fabric_link.queue_pkts;
        let st = &mut self.switches[li].ports[port.index()];
        if st.q.len() >= cap {
            self.port_stats[li][port.index()].queue_drops += 1;
            let rec = DropRecord {
                time: now,
                sw: Some(sw),
                port: Some(port),
                reason: DropReason::QueueFull,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            stage_drop(self.drops, net.cfg.collect_drop_log, now, kg, rec);
            return;
        }
        st.q.push_back(pkt);
        if !st.busy {
            st.busy = true;
            let tx = net
                .cfg
                .fabric_link
                .tx_time(st.q.front().expect("just pushed").wire_size());
            self.emit(
                net,
                now.saturating_add(tx),
                kg,
                EventKind::PortTx { sw, port },
                out,
            );
        }
    }

    fn handle_port_tx(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        sw: SwitchId,
        port: PortNo,
        out: &mut Vec<Outgoing>,
    ) {
        let li = net.plan.local_of_switch[sw.index()];
        let pkt = {
            let st = &mut self.switches[li].ports[port.index()];
            st.q.pop_front().expect("PortTx with empty queue")
        };
        let counters = &mut self.port_stats[li][port.index()];
        counters.tx_pkts += 1;
        counters.tx_bytes += pkt.wire_size() as u64;

        let fault = self.switches[li].ports[port.index()].fault;
        let mut dropped: Option<DropReason> = None;
        if fault.down {
            self.port_stats[li][port.index()].down_drops += 1;
            dropped = Some(DropReason::LinkDown);
        } else if fault.blackhole {
            self.port_stats[li][port.index()].blackhole_drops += 1;
            dropped = Some(DropReason::Blackhole);
        } else if fault.silent_drop_rate > 0.0
            && self.rngs[li].gen::<f64>() < fault.silent_drop_rate
        {
            self.port_stats[li][port.index()].silent_drops += 1;
            dropped = Some(DropReason::SilentRandom);
        }

        if let Some(reason) = dropped {
            let rec = DropRecord {
                time: now,
                sw: Some(sw),
                port: Some(port),
                reason,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            stage_drop(self.drops, net.cfg.collect_drop_log, now, kg, rec);
        } else {
            let arrive = now.saturating_add(net.cfg.fabric_link.prop_delay);
            match net.topo.peer(sw, port) {
                Peer::Switch {
                    sw: nsw,
                    port: nport,
                } => self.emit(
                    net,
                    arrive,
                    kg,
                    EventKind::SwitchRx {
                        sw: nsw,
                        in_port: Some(nport),
                        pkt,
                    },
                    out,
                ),
                Peer::Host(h) => {
                    self.emit(net, arrive, kg, EventKind::HostRx { host: h, pkt }, out)
                }
                Peer::Unconnected => self.drop_no_route(net, now, kg, sw, &pkt),
            }
        }

        // Start serializing the next head-of-line packet, if any.
        let st = &mut self.switches[li].ports[port.index()];
        if let Some(front) = st.q.front() {
            let tx = net.cfg.fabric_link.tx_time(front.wire_size());
            self.emit(
                net,
                now.saturating_add(tx),
                kg,
                EventKind::PortTx { sw, port },
                out,
            );
        } else {
            st.busy = false;
        }
    }
}

impl LaneCtx for SwitchCtx<'_> {
    fn shard(&self) -> usize {
        self.shard
    }

    fn queue_mut(&mut self) -> &mut EventQueue {
        self.queue
    }

    fn dispatch_event(&mut self, net: &Net, ev: EventEntry, out: &mut Vec<Outgoing>) {
        self.dispatch(net, ev, out);
    }
}

// ---------------------------------------------------------------------------
// The edge shard: hosts, NICs, timers, world, controller.
// ---------------------------------------------------------------------------

struct EdgeCtx<'a, W: World> {
    shard: usize,
    world: &'a mut W,
    nics: &'a mut [PortState],
    nic_stats: &'a mut [LinkCounters],
    queue: &'a mut EventQueue,
    rng: &'a mut SmallRng,
    next_uid: &'a mut u64,
    delivered_pkts: &'a mut u64,
    delivered_bytes: &'a mut u64,
    injected_pkts: &'a mut u64,
    drops: &'a mut Vec<KeyedDrop>,
    events: u64,
    max_t: Nanos,
}

impl<W: World> EdgeCtx<'_, W> {
    fn emit(
        &mut self,
        net: &Net,
        at: Nanos,
        kg: &mut KeyGen,
        kind: EventKind,
        out: &mut Vec<Outgoing>,
    ) {
        emit_event(net, self.shard, self.queue, at, kg, kind, out);
    }

    fn dispatch(&mut self, net: &Net, ev: EventEntry, out: &mut Vec<Outgoing>) {
        self.events += 1;
        if ev.at > self.max_t {
            self.max_t = ev.at;
        }
        let mut kg = KeyGen::new(ev.seq);
        match ev.kind {
            EventKind::HostRx { host, pkt } => {
                self.handle_host_rx(net, ev.at, &mut kg, host, pkt, out)
            }
            EventKind::HostTx { host } => self.handle_host_tx(net, ev.at, &mut kg, host, out),
            EventKind::Timer { host, token } => {
                self.handle_timer(net, ev.at, &mut kg, host, token, out)
            }
            EventKind::CtrlRx { punt } => self.handle_ctrl_rx(net, ev.at, &mut kg, punt, out),
            _ => unreachable!("switch event routed to the edge shard"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn nic_enqueue(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        host: HostId,
        pkt: Packet,
        out: &mut Vec<Outgoing>,
    ) {
        let cap = net.cfg.host_link.queue_pkts;
        let nic = &mut self.nics[host.index()];
        if nic.q.len() >= cap {
            self.nic_stats[host.index()].queue_drops += 1;
            let rec = DropRecord {
                time: now,
                sw: None,
                port: None,
                reason: DropReason::QueueFull,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            stage_drop(self.drops, net.cfg.collect_drop_log, now, kg, rec);
            return;
        }
        nic.q.push_back(pkt);
        if !nic.busy {
            nic.busy = true;
            let tx = net
                .cfg
                .host_link
                .tx_time(nic.q.front().expect("just pushed").wire_size());
            self.emit(
                net,
                now.saturating_add(tx),
                kg,
                EventKind::HostTx { host },
                out,
            );
        }
    }

    fn handle_host_tx(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        host: HostId,
        out: &mut Vec<Outgoing>,
    ) {
        let pkt = {
            let nic = &mut self.nics[host.index()];
            nic.q.pop_front().expect("HostTx with empty queue")
        };
        let counters = &mut self.nic_stats[host.index()];
        counters.tx_pkts += 1;
        counters.tx_bytes += pkt.wire_size() as u64;

        let fault = self.nics[host.index()].fault;
        let mut dropped: Option<DropReason> = None;
        if fault.down {
            self.nic_stats[host.index()].down_drops += 1;
            dropped = Some(DropReason::LinkDown);
        } else if fault.blackhole {
            self.nic_stats[host.index()].blackhole_drops += 1;
            dropped = Some(DropReason::Blackhole);
        } else if fault.silent_drop_rate > 0.0 && self.rng.gen::<f64>() < fault.silent_drop_rate {
            self.nic_stats[host.index()].silent_drops += 1;
            dropped = Some(DropReason::SilentRandom);
        }

        if let Some(reason) = dropped {
            let rec = DropRecord {
                time: now,
                sw: None,
                port: None,
                reason,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            stage_drop(self.drops, net.cfg.collect_drop_log, now, kg, rec);
        } else {
            let hm = net.topo.host(host);
            let (tor, tor_port) = (hm.tor, hm.tor_port);
            let arrive = now.saturating_add(net.cfg.host_link.prop_delay);
            self.emit(
                net,
                arrive,
                kg,
                EventKind::SwitchRx {
                    sw: tor,
                    in_port: Some(tor_port),
                    pkt,
                },
                out,
            );
        }

        let nic = &mut self.nics[host.index()];
        if let Some(front) = nic.q.front() {
            let tx = net.cfg.host_link.tx_time(front.wire_size());
            self.emit(
                net,
                now.saturating_add(tx),
                kg,
                EventKind::HostTx { host },
                out,
            );
        } else {
            nic.busy = false;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_host_rx(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        host: HostId,
        pkt: Packet,
        out: &mut Vec<Outgoing>,
    ) {
        *self.delivered_pkts += 1;
        *self.delivered_bytes += pkt.wire_size() as u64;
        let mut actions = Vec::new();
        {
            let mut api = HostApi {
                now,
                host,
                actions: &mut actions,
                rng: self.rng,
                next_uid: self.next_uid,
            };
            self.world.on_packet(&mut api, pkt);
        }
        self.apply_host_actions(net, now, kg, host, actions, out);
    }

    fn handle_timer(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        host: HostId,
        token: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let mut actions = Vec::new();
        {
            let mut api = HostApi {
                now,
                host,
                actions: &mut actions,
                rng: self.rng,
                next_uid: self.next_uid,
            };
            self.world.on_timer(&mut api, token);
        }
        self.apply_host_actions(net, now, kg, host, actions, out);
    }

    fn apply_host_actions(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        host: HostId,
        actions: Vec<HostAction>,
        out: &mut Vec<Outgoing>,
    ) {
        for a in actions {
            match a {
                HostAction::Send(mut pkt) => {
                    if pkt.uid == 0 {
                        *self.next_uid += 1;
                        pkt.uid = *self.next_uid;
                    }
                    pkt.ttl = net.cfg.ttl;
                    pkt.sent_at = now;
                    *self.injected_pkts += 1;
                    self.nic_enqueue(net, now, kg, host, pkt, out);
                }
                HostAction::Timer { delay, token } => {
                    self.emit(
                        net,
                        now.saturating_add(delay),
                        kg,
                        EventKind::Timer { host, token },
                        out,
                    );
                }
            }
        }
    }

    fn handle_ctrl_rx(
        &mut self,
        net: &Net,
        now: Nanos,
        kg: &mut KeyGen,
        punt: Punt,
        out: &mut Vec<Outgoing>,
    ) {
        let mut actions = Vec::new();
        {
            let mut api = CtrlApi {
                now,
                actions: &mut actions,
            };
            self.world.on_punt(&mut api, punt);
        }
        for a in actions {
            match a {
                CtrlAction::PacketOut { sw, in_port, pkt } => {
                    self.emit(
                        net,
                        now.saturating_add(net.cfg.packet_out_latency),
                        kg,
                        EventKind::SwitchRx { sw, in_port, pkt },
                        out,
                    );
                }
            }
        }
    }
}

impl<W: World> LaneCtx for EdgeCtx<'_, W> {
    fn shard(&self) -> usize {
        self.shard
    }

    fn queue_mut(&mut self) -> &mut EventQueue {
        self.queue
    }

    fn dispatch_event(&mut self, net: &Net, ev: EventEntry, out: &mut Vec<Outgoing>) {
        self.dispatch(net, ev, out);
    }
}

// ---------------------------------------------------------------------------
// The facade.
// ---------------------------------------------------------------------------

/// The packet-level network simulator.
///
/// Generic over a [`World`] — the edge logic (transport engines, PathDump
/// agents, controller) — so harnesses retain typed access via
/// [`Simulator::world`]. The public API is engine-agnostic: whether the
/// schedule executes sequentially or sharded per pod
/// ([`SimConfig::engine`]), every observable — stats, drop log, clock,
/// pending counts, world callbacks — is identical (see module docs).
pub struct Simulator<W: World> {
    cfg: SimConfig,
    topo: Topology,
    routes: RouteTables,
    plan: ShardPlan,
    switches: Vec<SwitchState>,
    switch_rngs: Vec<SmallRng>,
    nics: Vec<PortState>,
    tag_policy: Box<dyn TagPolicy>,
    /// The edge logic driving and observing the network.
    pub world: W,
    clock: Nanos,
    /// One event queue per switch shard, plus the edge queue (last).
    queues: Vec<EventQueue>,
    edge_rng: SmallRng,
    next_uid: u64,
    root_seq: u64,
    /// Counters (see [`SimStats`]).
    pub stats: SimStats,
    drop_stage: Vec<Vec<KeyedDrop>>,
    /// Persistent shard workers (empty until the first pooled run; parked
    /// between runs; joined on drop).
    pool: WorkerPool,
}

impl<W: World> Simulator<W> {
    /// Builds a simulator over a routed topology.
    pub fn new<R: UpDownRouting + ?Sized>(
        routing: &R,
        cfg: SimConfig,
        tag_policy: Box<dyn TagPolicy>,
        world: W,
    ) -> Self {
        let topo = routing.topology().clone();
        let routes = RouteTables::build(routing);
        let plan = ShardPlan::build(&topo, &cfg);
        let switches: Vec<SwitchState> = topo
            .switches
            .iter()
            .map(|sw| SwitchState {
                lb: LoadBalance::default(),
                quirks: SwitchQuirks::default(),
                ports: sw.ports.iter().map(|_| PortState::default()).collect(),
            })
            .collect();
        let switch_rngs: Vec<SmallRng> = (0..topo.num_switches())
            .map(|i| SmallRng::seed_from_u64(mix64(cfg.seed ^ (SWITCH_STREAM_BASE + i as u64))))
            .collect();
        let nics = (0..topo.num_hosts())
            .map(|_| PortState::default())
            .collect();
        let ports_per_switch: Vec<usize> = topo.switches.iter().map(|s| s.ports.len()).collect();
        let stats = SimStats::new(topo.num_switches(), &ports_per_switch, topo.num_hosts());
        let queues = (0..plan.total_shards())
            .map(|_| EventQueue::new())
            .collect();
        let drop_stage = (0..plan.total_shards()).map(|_| Vec::new()).collect();
        Simulator {
            edge_rng: SmallRng::seed_from_u64(mix64(cfg.seed ^ EDGE_STREAM_SALT)),
            cfg,
            routes,
            switches,
            switch_rngs,
            nics,
            tag_policy,
            world,
            clock: Nanos::ZERO,
            queues,
            next_uid: 0,
            root_seq: 0,
            stats,
            drop_stage,
            plan,
            topo,
            pool: WorkerPool::default(),
        }
    }

    /// Current simulated time: the latest processed event time, clamped up
    /// to the last `run_until` horizon. Under sharding this is the global
    /// maximum across shards — exact at every `run_until` return (the
    /// window barrier has merged all shards by then).
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The engine that actually executes run calls: [`EngineKind::Sharded`]
    /// requires a partitionable topology (≥ 2 switch shards) and strictly
    /// positive lookahead on every cross-shard channel; otherwise the
    /// facade falls back to the sequential driver.
    pub fn effective_engine(&self) -> EngineKind {
        if self.cfg.engine == EngineKind::Sharded && self.plan.shardable() {
            EngineKind::Sharded
        } else {
            EngineKind::Sequential
        }
    }

    /// Allocates a unique packet ID.
    pub fn alloc_uid(&mut self) -> u64 {
        self.next_uid += 1;
        self.next_uid
    }

    fn root_keygen(&mut self) -> KeyGen {
        self.root_seq += 1;
        KeyGen::new(mix64(ROOT_KEY_BASE ^ self.root_seq))
    }

    // --- fault & policy installation -------------------------------------

    /// Looks up the egress port of the directed link `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if the switches are not adjacent.
    pub fn link_port(&self, from: SwitchId, to: SwitchId) -> PortNo {
        self.topo
            .switch(from)
            .port_towards(to)
            .unwrap_or_else(|| panic!("{from} and {to} are not adjacent"))
    }

    /// Sets the fault state of the directed link `from -> to`.
    pub fn set_directed_fault(&mut self, from: SwitchId, to: SwitchId, fault: FaultState) {
        let port = self.link_port(from, to);
        self.switches[from.index()].ports[port.index()].fault = fault;
    }

    /// Reads the fault state of the directed link `from -> to`.
    pub fn directed_fault(&self, from: SwitchId, to: SwitchId) -> FaultState {
        let port = self.link_port(from, to);
        self.switches[from.index()].ports[port.index()].fault
    }

    /// Takes the undirected link `a <-> b` down (both directions).
    pub fn set_link_down(&mut self, a: SwitchId, b: SwitchId, down: bool) {
        for (x, y) in [(a, b), (b, a)] {
            let port = self.link_port(x, y);
            self.switches[x.index()].ports[port.index()].fault.down = down;
        }
    }

    /// Sets the fault state of a host-facing ToR egress (the "interface
    /// toward host" direction used for drops-on-server scenarios).
    pub fn set_host_downlink_fault(&mut self, host: HostId, fault: FaultState) {
        let hm = self.topo.host(host).clone();
        self.switches[hm.tor.index()].ports[hm.tor_port.index()].fault = fault;
    }

    /// Sets the fault state of a host NIC (uplink direction).
    pub fn set_nic_fault(&mut self, host: HostId, fault: FaultState) {
        self.nics[host.index()].fault = fault;
    }

    /// Sets the load-balance policy of one switch.
    pub fn set_lb(&mut self, sw: SwitchId, lb: LoadBalance) {
        self.switches[sw.index()].lb = lb;
    }

    /// Sets the load-balance policy of every switch.
    pub fn set_lb_all(&mut self, lb: LoadBalance) {
        for s in &mut self.switches {
            s.lb = lb.clone();
        }
    }

    /// Installs a forwarding quirk on a switch.
    pub fn install_quirk(&mut self, sw: SwitchId, quirk: Quirk) {
        self.switches[sw.index()].quirks.install(quirk);
    }

    /// Removes all quirks from a switch.
    pub fn clear_quirks(&mut self, sw: SwitchId) {
        self.switches[sw.index()].quirks.clear();
    }

    /// Applies a route-table misconfiguration: a persistent rewrite of the
    /// installed candidate sets (see [`Misconfig`]).
    ///
    /// Only candidate *selection* changes — per-link fault filtering,
    /// quirks, load balancing, and drop accounting all run unchanged on the
    /// misrouted traffic, so a packet steered onto a faulty link by a bad
    /// rule is staged in the drop log exactly once by the fault machinery.
    pub fn install_misconfig(&mut self, m: &Misconfig) {
        m.apply(&mut self.routes);
    }

    /// The installed route tables (after any misconfigurations) — the
    /// exact forwarding state the static verifier should analyze.
    pub fn route_tables(&self) -> &RouteTables {
        &self.routes
    }

    // --- injection --------------------------------------------------------

    /// Schedules `World::on_timer(host, token)` after `delay`.
    pub fn schedule_timer(&mut self, host: HostId, delay: Nanos, token: u64) {
        let at = self.clock.saturating_add(delay);
        let mut kg = self.root_keygen();
        let key = kg.next_key();
        let edge = self.plan.edge_shard();
        self.queues[edge].push_keyed(at, key, EventKind::Timer { host, token });
    }

    /// Transmits a packet from `host` (stamping uid/ttl/sent time).
    pub fn send_from(&mut self, host: HostId, mut pkt: Packet) {
        if pkt.uid == 0 {
            pkt.uid = self.alloc_uid();
        }
        pkt.ttl = self.cfg.ttl;
        pkt.sent_at = self.clock;
        self.stats.injected_pkts += 1;
        let now = self.clock;
        let mut kg = self.root_keygen();

        // Borrow an edge context for the enqueue so the logic (queue caps,
        // drop staging, HostTx scheduling) is exactly the in-run path.
        self.with_edge_ctx(|net, ectx| {
            let mut out: Vec<Outgoing> = Vec::new();
            ectx.nic_enqueue(net, now, &mut kg, host, pkt, &mut out);
            // A NIC enqueue can only schedule HostTx, which is edge-local.
            debug_assert!(out.is_empty(), "facade injection cannot cross shards");
        });
        self.merge_staged();
    }

    // --- shared context construction ---------------------------------------

    /// Splits the facade into the read-only [`Net`] view, the per-shard
    /// switch contexts (only when `build_switches`), and the edge context
    /// — the one borrow decomposition both `send_from` and `run_until`
    /// use — runs `f`, then folds the contexts' event totals and clock
    /// back into the facade.
    fn with_ctxs<R>(
        &mut self,
        build_switches: bool,
        f: impl FnOnce(&Net, &mut [SwitchCtx<'_>], &mut EdgeCtx<'_, W>) -> R,
    ) -> R {
        let Simulator {
            cfg,
            topo,
            routes,
            plan,
            switches,
            switch_rngs,
            nics,
            tag_policy,
            world,
            queues,
            edge_rng,
            next_uid,
            stats,
            drop_stage,
            ..
        } = self;
        let SimStats {
            switch_ports,
            switches: sw_counters,
            host_nics,
            delivered_pkts,
            delivered_bytes,
            injected_pkts,
            ..
        } = stats;
        let net = Net {
            cfg,
            topo,
            routes,
            plan,
            tag: tag_policy.as_ref(),
        };

        let (switch_queues, edge_queue) = queues.split_at_mut(plan.edge_shard());
        let (switch_stage, edge_stage) = drop_stage.split_at_mut(plan.edge_shard());

        // Distribute per-switch state into shard contexts (ascending global
        // id per shard, matching `ShardPlan::local_of_switch`).
        let mut sctxs: Vec<SwitchCtx> = Vec::new();
        if build_switches {
            sctxs.reserve(plan.switch_shards);
            let mut queue_it = switch_queues.iter_mut();
            let mut stage_it = switch_stage.iter_mut();
            for s in 0..plan.switch_shards {
                sctxs.push(SwitchCtx {
                    shard: s,
                    switches: Vec::new(),
                    rngs: Vec::new(),
                    sw_stats: Vec::new(),
                    port_stats: Vec::new(),
                    queue: queue_it.next().expect("switch shard queue"),
                    drops: stage_it.next().expect("switch shard stage"),
                    events: 0,
                    max_t: Nanos::ZERO,
                    usable_buf: Vec::new(),
                });
            }
            for (i, st) in switches.iter_mut().enumerate() {
                sctxs[plan.shard_of_switch[i]].switches.push(st);
            }
            for (i, r) in switch_rngs.iter_mut().enumerate() {
                sctxs[plan.shard_of_switch[i]].rngs.push(r);
            }
            for (i, c) in sw_counters.iter_mut().enumerate() {
                sctxs[plan.shard_of_switch[i]].sw_stats.push(c);
            }
            for (i, p) in switch_ports.iter_mut().enumerate() {
                sctxs[plan.shard_of_switch[i]].port_stats.push(p);
            }
        }
        let mut ectx = EdgeCtx {
            shard: plan.edge_shard(),
            world,
            nics,
            nic_stats: host_nics,
            queue: &mut edge_queue[0],
            rng: edge_rng,
            next_uid,
            delivered_pkts,
            delivered_bytes,
            injected_pkts,
            drops: &mut edge_stage[0],
            events: 0,
            max_t: Nanos::ZERO,
        };

        let r = f(&net, &mut sctxs, &mut ectx);

        // Fold per-shard run totals back into the facade.
        let mut events = ectx.events;
        let mut max_t = ectx.max_t;
        for c in &sctxs {
            events += c.events;
            if c.max_t > max_t {
                max_t = c.max_t;
            }
        }
        stats.events += events;
        if max_t > self.clock {
            self.clock = max_t;
        }
        r
    }

    /// [`Self::with_ctxs`] without the switch contexts: the cheap
    /// decomposition for facade operations that only touch the edge shard.
    fn with_edge_ctx<R>(&mut self, f: impl FnOnce(&Net, &mut EdgeCtx<'_, W>) -> R) -> R {
        self.with_ctxs(false, |net, _sctxs, ectx| f(net, ectx))
    }

    // --- run loop ----------------------------------------------------------

    /// Processes events until simulated time `t` (inclusive); the clock ends
    /// at `t` even if the queue drains earlier.
    ///
    /// Events stamped exactly `Nanos::MAX` (a saturated timestamp, e.g. an
    /// overflowing timer delay) are treated as "never" and do not fire on
    /// either engine.
    pub fn run_until(&mut self, t: Nanos) {
        let engine = self.effective_engine();
        let mode = self.cfg.worker_mode(self.plan.switch_shards);
        // The pool steps out of `self` for the duration of the run so the
        // context decomposition can borrow everything else; it is restored
        // even when the run unwinds (a caught world panic must not cost
        // the parked threads).
        let mut pool = std::mem::take(&mut self.pool);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.drive(engine, mode, &mut pool, t)
        }));
        self.pool = pool;
        if let Err(p) = run {
            std::panic::resume_unwind(p);
        }
        if t > self.clock && t != Nanos::MAX {
            self.clock = t;
        }
        self.merge_staged();
    }

    /// The engine dispatch of one `run_until` call (split out so the
    /// caller can restore the pool around an unwinding run).
    fn drive(&mut self, engine: EngineKind, mode: WorkerMode, pool: &mut WorkerPool, t: Nanos) {
        self.with_ctxs(true, |net, sctxs, ectx| {
            match (engine, mode) {
                (EngineKind::Sequential, _) => {
                    let mut lanes = all_lanes(sctxs, ectx);
                    seq_drive(net, &mut lanes, t);
                }
                (EngineKind::Sharded, WorkerMode::Inline) => {
                    let mut lanes = all_lanes(sctxs, ectx);
                    let mut sync = InlineSync::new(net.plan.total_shards());
                    drive_windowed_rounds(net, &mut lanes, &mut sync, t);
                }
                (EngineKind::Sharded, WorkerMode::Pool(workers)) => {
                    let exch = Exchange::new(net.plan.total_shards(), workers + 1);
                    // Round-robin shards over workers.
                    let mut groups: Vec<Vec<&mut SwitchCtx>> =
                        (0..workers).map(|_| Vec::new()).collect();
                    for (i, c) in sctxs.iter_mut().enumerate() {
                        groups[i % workers].push(c);
                    }
                    let exchr = &exch;
                    let jobs: Vec<Job<'_>> = groups
                        .into_iter()
                        .map(|mut group| {
                            Box::new(move || {
                                let mut lanes: Vec<&mut dyn LaneCtx> = group
                                    .iter_mut()
                                    .map(|c| &mut **c as &mut dyn LaneCtx)
                                    .collect();
                                let mut sync = ExchangeSync::new(exchr);
                                drive_windowed_rounds(net, &mut lanes, &mut sync, t);
                            }) as Job<'_>
                        })
                        .collect();
                    // Parked pool workers drive the switch groups; this
                    // thread drives the edge shard through the identical
                    // round loop; the batch guard joins the round trip.
                    let batch = pool.dispatch(jobs);
                    {
                        let mut lanes: Vec<&mut dyn LaneCtx> = vec![ectx];
                        let mut sync = ExchangeSync::new(exchr);
                        drive_windowed_rounds(net, &mut lanes, &mut sync, t);
                    }
                    batch.finish();
                }
            }
        });
    }

    /// Pool lifecycle counters (tests pin the thread-reuse contract on
    /// these; see [`PoolStats`]). All zero until the first run under
    /// [`WorkerMode::Pool`].
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Runs until the event queue drains (or `hard_cap` is reached).
    pub fn run_to_completion(&mut self, hard_cap: Nanos) {
        self.run_until(hard_cap);
    }

    /// Number of pending events across all shards (diagnostics). Exact at
    /// every `run_until` return: the window barrier leaves no cross-shard
    /// message in flight.
    pub fn pending_events(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Merges staged per-shard drop records into the public drop log in
    /// `(time, causal key, birth)` order — the sequential processing order,
    /// however the run was scheduled.
    fn merge_staged(&mut self) {
        if self.drop_stage.iter().all(|s| s.is_empty()) {
            return;
        }
        let mut staged: Vec<KeyedDrop> = self
            .drop_stage
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        staged.sort_by_key(|d| (d.at, d.parent, d.birth));
        for d in staged {
            if self.stats.drop_log.len() >= DROP_LOG_CAP {
                break;
            }
            self.stats.drop_log.push(d.rec);
        }
    }
}

/// Collects every shard context into the lane list the drivers consume:
/// switch shards in shard order, the edge shard last (lane order is also
/// the sequential tie-scan order).
fn all_lanes<'c, W: World>(
    sctxs: &'c mut [SwitchCtx<'_>],
    ectx: &'c mut EdgeCtx<'_, W>,
) -> Vec<&'c mut (dyn LaneCtx + 'c)> {
    let mut lanes: Vec<&mut (dyn LaneCtx + 'c)> = sctxs
        .iter_mut()
        .map(|c| c as &mut (dyn LaneCtx + 'c))
        .collect();
    lanes.push(ectx as &mut (dyn LaneCtx + 'c));
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TagHeaders;
    use crate::traits::NoTagging;
    use pathdump_topology::{FatTree, FatTreeParams, FlowId, Path, MILLIS, SECONDS};

    /// Records deliveries and punts; can re-inject punted packets.
    #[derive(Default)]
    struct TestWorld {
        delivered: Vec<(HostId, Packet)>,
        punts: Vec<Punt>,
        reinject_punts: bool,
    }

    impl World for TestWorld {
        fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet) {
            let host = api.host();
            self.delivered.push((host, pkt));
        }
        fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
        fn on_punt(&mut self, api: &mut CtrlApi<'_>, punt: Punt) {
            self.punts.push(punt.clone());
            if self.reinject_punts {
                let mut pkt = punt.pkt;
                pkt.headers.strip();
                api.packet_out(punt.sw, punt.in_port, pkt);
            }
        }
    }

    fn ft4() -> FatTree {
        FatTree::build(FatTreeParams { k: 4 })
    }

    fn sim(ft: &FatTree) -> Simulator<TestWorld> {
        Simulator::new(
            ft,
            SimConfig::for_tests(),
            Box::new(NoTagging),
            TestWorld::default(),
        )
    }

    fn flow(ft: &FatTree, src: HostId, dst: HostId, sport: u16) -> FlowId {
        let t = ft.topology();
        FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
    }

    fn one_packet(sim: &mut Simulator<TestWorld>, f: FlowId, src: HostId) {
        let pkt = Packet::data(0, f, 0, 1000, sim.now());
        sim.send_from(src, pkt);
    }

    #[test]
    fn delivers_same_tor() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 0, 1));
        one_packet(&mut s, flow(&ft, a, b, 1000), a);
        s.run_until(Nanos::from_millis(10));
        assert_eq!(s.world.delivered.len(), 1);
        let (h, pkt) = &s.world.delivered[0];
        assert_eq!(*h, b);
        assert_eq!(pkt.gt_path, vec![ft.tor(0, 0)]);
    }

    #[test]
    fn delivers_inter_pod_on_shortest_path() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(2, 1, 1));
        one_packet(&mut s, flow(&ft, a, b, 1000), a);
        s.run_until(Nanos::from_millis(10));
        assert_eq!(s.world.delivered.len(), 1);
        let gt = Path::new(s.world.delivered[0].1.gt_path.clone());
        let shortest = ft.all_paths(a, b);
        assert!(shortest.contains(&gt), "gt {gt} not a shortest path");
    }

    #[test]
    fn ecmp_spreads_distinct_flows() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        for sport in 0..64 {
            one_packet(&mut s, flow(&ft, a, b, 2000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 64);
        let distinct: std::collections::HashSet<Vec<SwitchId>> = s
            .world
            .delivered
            .iter()
            .map(|(_, p)| p.gt_path.clone())
            .collect();
        assert!(
            distinct.len() >= 3,
            "ECMP used only {} of 4 paths",
            distinct.len()
        );
    }

    #[test]
    fn ecmp_pins_single_flow() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 777);
        for _ in 0..32 {
            one_packet(&mut s, f, a);
        }
        s.run_until(Nanos::from_millis(100));
        let distinct: std::collections::HashSet<Vec<SwitchId>> = s
            .world
            .delivered
            .iter()
            .map(|(_, p)| p.gt_path.clone())
            .collect();
        assert_eq!(distinct.len(), 1, "one flow must stay on one ECMP path");
    }

    #[test]
    fn spraying_uses_all_paths() {
        let ft = ft4();
        let mut s = sim(&ft);
        s.set_lb_all(LoadBalance::Spray);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 777);
        for _ in 0..200 {
            one_packet(&mut s, f, a);
        }
        s.run_until(Nanos::from_secs(1));
        let distinct: std::collections::HashSet<Vec<SwitchId>> = s
            .world
            .delivered
            .iter()
            .map(|(_, p)| p.gt_path.clone())
            .collect();
        assert_eq!(distinct.len(), 4, "spraying must hit all 4 paths");
    }

    #[test]
    fn weighted_spray_skews() {
        let ft = ft4();
        let mut s = sim(&ft);
        s.set_lb_all(LoadBalance::Spray);
        // Bias the source ToR's uplinks 9:1.
        s.set_lb(ft.tor(0, 0), LoadBalance::WeightedSpray(vec![9, 1]));
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 777);
        for _ in 0..100 {
            one_packet(&mut s, f, a);
        }
        s.run_until(Nanos::from_secs(2));
        let via_agg0 = s
            .world
            .delivered
            .iter()
            .filter(|(_, p)| p.gt_path.contains(&ft.agg(0, 0)))
            .count();
        let total = s.world.delivered.len();
        assert!(total >= 95, "most packets must arrive, got {total}");
        assert!(
            via_agg0 > total * 7 / 10,
            "expected heavy skew toward agg0: {via_agg0}/{total}"
        );
    }

    #[test]
    fn link_down_triggers_reroute() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        // Kill ToR(0,0) -> Agg(0,0); intra-pod flows must all use agg 1.
        s.set_link_down(ft.tor(0, 0), ft.agg(0, 0), true);
        for sport in 0..16 {
            one_packet(&mut s, flow(&ft, a, b, 3000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 16);
        for (_, p) in &s.world.delivered {
            assert_eq!(p.gt_path, vec![ft.tor(0, 0), ft.agg(0, 1), ft.tor(0, 1)]);
        }
    }

    #[test]
    fn full_uplink_failure_bounces() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        // At Agg(0,0): both core uplinks down; packet must bounce and still
        // get delivered via a longer path.
        s.set_link_down(ft.agg(0, 0), ft.core(0), true);
        s.set_link_down(ft.agg(0, 0), ft.core(1), true);
        // Pin the flow through agg(0,0): only that agg's uplinks are dead.
        s.install_quirk(
            ft.tor(0, 0),
            Quirk::ForwardFlowTo {
                flow: flow(&ft, a, b, 4000),
                port: s.link_port(ft.tor(0, 0), ft.agg(0, 0)),
            },
        );
        one_packet(&mut s, flow(&ft, a, b, 4000), a);
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 1);
        let gt = &s.world.delivered[0].1.gt_path;
        assert!(gt.len() > 5, "bounce path must be longer: {gt:?}");
        assert_eq!(gt.last(), Some(&ft.tor(1, 0)));
    }

    #[test]
    fn silent_drops_hidden_from_visible_counters() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        let victim = ft.agg(0, 0);
        s.set_directed_fault(
            victim,
            ft.tor(0, 1),
            FaultState {
                silent_drop_rate: 1.0,
                ..FaultState::HEALTHY
            },
        );
        // Force all flows through agg(0,0) by killing the path via agg(0,1).
        s.set_link_down(ft.tor(0, 0), ft.agg(0, 1), true);
        for sport in 0..20 {
            one_packet(&mut s, flow(&ft, a, b, 5000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 0);
        let port = s.link_port(victim, ft.tor(0, 1));
        let c = s.stats.port(victim, port);
        assert_eq!(c.silent_drops, 20);
        assert_eq!(c.visible_drops(), 0, "silent drops must stay invisible");
        assert_eq!(c.tx_pkts, 20, "interface counters look healthy");
    }

    #[test]
    fn blackhole_drops_everything() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        s.set_directed_fault(
            ft.tor(0, 0),
            ft.agg(0, 0),
            FaultState {
                blackhole: true,
                ..FaultState::HEALTHY
            },
        );
        s.set_link_down(ft.tor(0, 0), ft.agg(0, 1), true);
        for sport in 0..10 {
            one_packet(&mut s, flow(&ft, a, b, 6000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert!(s.world.delivered.is_empty());
        let port = s.link_port(ft.tor(0, 0), ft.agg(0, 0));
        assert_eq!(s.stats.port(ft.tor(0, 0), port).blackhole_drops, 10);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let ft = ft4();
        let mut cfg = SimConfig::for_tests();
        cfg.fabric_link.queue_pkts = 4;
        let mut s = Simulator::new(&ft, cfg, Box::new(NoTagging), TestWorld::default());
        // Two senders on different ToR host ports burst into one receiver.
        let (a, b, c) = (ft.host(0, 0, 0), ft.host(0, 0, 1), ft.host(0, 1, 0));
        for sport in 0..60 {
            one_packet(&mut s, flow(&ft, a, c, 7000 + sport), a);
            one_packet(&mut s, flow(&ft, b, c, 8000 + sport), b);
        }
        s.run_until(Nanos::from_secs(1));
        let drops: u64 = (0..2)
            .map(|t| {
                let sw = ft.agg(0, t);
                let p = s.link_port(sw, ft.tor(0, 1));
                s.stats.port(sw, p).queue_drops
            })
            .sum::<u64>()
            + {
                // Drops can also occur at the ToR's agg-facing uplinks.
                let sw = ft.tor(0, 0);
                (0..2)
                    .map(|aidx| {
                        let p = s.link_port(sw, ft.agg(0, aidx));
                        s.stats.port(sw, p).queue_drops
                    })
                    .sum::<u64>()
            }
            + {
                let sw = ft.tor(0, 1);
                let hm = ft.topology().host(c);
                s.stats.port(sw, hm.tor_port).queue_drops
            };
        assert!(
            drops > 0,
            "bursting 120 packets through cap-4 queues must drop"
        );
        assert!(s.world.delivered.len() < 120);
        assert!(!s.stats.drop_log.is_empty());
    }

    /// Tag policy that pushes a constant tag at every switch: after three
    /// switches the packet exceeds the ASIC limit and must be punted.
    struct PushAlways;
    impl TagPolicy for PushAlways {
        fn on_forward(&self, sw: SwitchId, _in: Option<PortNo>, _out: PortNo, h: &mut TagHeaders) {
            h.push_tag(sw.0 % 4096);
        }
    }

    #[test]
    fn three_tags_punt_to_controller() {
        let ft = ft4();
        let mut s = Simulator::new(
            &ft,
            SimConfig::for_tests(),
            Box::new(PushAlways),
            TestWorld::default(),
        );
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        one_packet(&mut s, flow(&ft, a, b, 9000), a);
        s.run_until(Nanos::from_secs(1));
        // tor pushes tag1, agg pushes tag2, core pushes tag3 -> the dst-pod
        // aggregate sees 3 tags and punts.
        assert_eq!(s.world.punts.len(), 1);
        assert_eq!(s.world.delivered.len(), 0);
        let punt = &s.world.punts[0];
        assert_eq!(punt.pkt.headers.tag_count(), 3);
        assert_eq!(ft.coords(punt.sw).0, pathdump_topology::Tier::Agg);
        assert_eq!(s.stats.total_punts(), 1);
    }

    #[test]
    fn controller_reinject_completes_delivery() {
        let ft = ft4();
        let world = TestWorld {
            reinject_punts: true,
            ..Default::default()
        };
        let mut s = Simulator::new(&ft, SimConfig::for_tests(), Box::new(PushAlways), world);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        one_packet(&mut s, flow(&ft, a, b, 9100), a);
        s.run_until(Nanos::from_secs(1));
        // After the controller strips tags and re-injects, the packet
        // accumulates tags again from the punting switch onward: agg pushes
        // one, dst ToR pushes one -> 2 tags, delivered.
        assert_eq!(s.world.punts.len(), 1);
        assert_eq!(s.world.delivered.len(), 1);
        // Punt latency dominates delivery time.
        let cfg = SimConfig::for_tests();
        assert!(s.world.delivered[0].1.sent_at == Nanos::ZERO);
        assert!(s.now() >= cfg.punt_latency);
    }

    #[test]
    fn ttl_backstops_quirk_loops() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 9200);
        // agg(0,0) -> core(0) -> agg(1,0) -> core(1) -> agg(0,0) loop.
        s.install_quirk(
            ft.agg(1, 0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.agg(1, 0), ft.core(1)),
            },
        );
        s.install_quirk(
            ft.core(1),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.core(1), ft.agg(0, 0)),
            },
        );
        s.install_quirk(
            ft.agg(0, 0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.agg(0, 0), ft.core(0)),
            },
        );
        s.install_quirk(
            ft.core(0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.core(0), ft.agg(1, 0)),
            },
        );
        // Pin the first hop into the loop.
        s.install_quirk(
            ft.tor(0, 0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.tor(0, 0), ft.agg(0, 0)),
            },
        );
        one_packet(&mut s, f, a);
        s.run_until(Nanos::from_secs(1));
        assert!(s.world.delivered.is_empty());
        let ttl_drops: u64 = s.stats.switches.iter().map(|c| c.ttl_drops).sum();
        assert_eq!(
            ttl_drops, 1,
            "loop must end in a TTL drop (no tags = no punt)"
        );
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let ft = ft4();
        let run = || {
            let mut s = sim(&ft);
            s.set_lb_all(LoadBalance::Spray);
            let (a, b) = (ft.host(0, 0, 0), ft.host(3, 1, 1));
            let f = flow(&ft, a, b, 1234);
            for _ in 0..100 {
                one_packet(&mut s, f, a);
            }
            s.run_until(Nanos(SECONDS));
            let paths: Vec<Vec<SwitchId>> = s
                .world
                .delivered
                .iter()
                .map(|(_, p)| p.gt_path.clone())
                .collect();
            (paths, s.stats.events)
        };
        let (p1, e1) = run();
        let (p2, e2) = run();
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn timers_fire_in_order() {
        let ft = ft4();
        #[derive(Default)]
        struct TimerWorld {
            fired: Vec<(u64, Nanos)>,
        }
        impl World for TimerWorld {
            fn on_packet(&mut self, _api: &mut HostApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
                self.fired.push((token, api.now()));
                if token == 1 {
                    api.set_timer(Nanos(5 * MILLIS), 3);
                }
            }
        }
        let mut s = Simulator::new(
            &ft,
            SimConfig::for_tests(),
            Box::new(NoTagging),
            TimerWorld::default(),
        );
        let h = ft.host(0, 0, 0);
        s.schedule_timer(h, Nanos(10 * MILLIS), 2);
        s.schedule_timer(h, Nanos(MILLIS), 1);
        s.run_until(Nanos::from_secs(1));
        assert_eq!(
            s.world.fired,
            vec![
                (1, Nanos(MILLIS)),
                (3, Nanos(6 * MILLIS)),
                (2, Nanos(10 * MILLIS)),
            ]
        );
    }

    #[test]
    fn nic_silent_fault_applies() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 0, 1));
        s.set_nic_fault(
            a,
            FaultState {
                silent_drop_rate: 1.0,
                ..FaultState::HEALTHY
            },
        );
        one_packet(&mut s, flow(&ft, a, b, 1), a);
        s.run_until(Nanos::from_millis(10));
        assert!(s.world.delivered.is_empty());
        assert_eq!(s.stats.host_nics[a.index()].silent_drops, 1);
    }

    // --- engine equivalence & sharding semantics --------------------------

    fn sharded_cfg(workers: usize) -> SimConfig {
        let mut cfg = SimConfig::for_tests().with_engine(EngineKind::Sharded);
        cfg.shard_workers = workers;
        cfg
    }

    /// Drives a mixed workload (ECMP + spray + silent drops + a downed
    /// link) and returns every engine-visible observable.
    #[allow(clippy::type_complexity)]
    fn mixed_run(
        ft: &FatTree,
        cfg: SimConfig,
        t: Nanos,
    ) -> (SimStats, Vec<(HostId, u64, Vec<SwitchId>)>) {
        let mut s = Simulator::new(ft, cfg, Box::new(NoTagging), TestWorld::default());
        s.set_lb(ft.tor(0, 0), LoadBalance::Spray);
        s.set_lb(ft.agg(1, 0), LoadBalance::Spray);
        s.set_directed_fault(
            ft.agg(0, 0),
            ft.tor(0, 1),
            FaultState {
                silent_drop_rate: 0.3,
                ..FaultState::HEALTHY
            },
        );
        s.set_link_down(ft.tor(2, 0), ft.agg(2, 1), true);
        let pairs = [
            ((0, 0, 0), (1, 0, 0)),
            ((0, 0, 1), (0, 1, 0)),
            ((2, 0, 0), (3, 1, 1)),
            ((1, 1, 0), (2, 1, 0)),
        ];
        for (i, &((sp, st, sh), (dp, dt, dh))) in pairs.iter().enumerate() {
            let (a, b) = (ft.host(sp, st, sh), ft.host(dp, dt, dh));
            for sport in 0..25u16 {
                one_packet(&mut s, flow(ft, a, b, 1000 + 100 * i as u16 + sport), a);
            }
        }
        s.run_until(t);
        let traj = s
            .world
            .delivered
            .iter()
            .map(|(h, p)| (*h, p.uid, p.gt_path.clone()))
            .collect();
        (s.stats.clone(), traj)
    }

    /// The sharded engine — inline (`workers == 0`) and pooled — must be
    /// bit-identical to the sequential reference on stats and per-packet
    /// trajectories.
    #[test]
    fn sharded_engine_matches_sequential() {
        let ft = ft4();
        let t = Nanos::from_millis(500);
        let (seq_stats, seq_traj) = mixed_run(&ft, SimConfig::for_tests(), t);
        assert!(!seq_traj.is_empty(), "workload must deliver packets");
        for workers in [0usize, 1, 2, 3] {
            let (st, tr) = mixed_run(&ft, sharded_cfg(workers), t);
            assert_eq!(tr, seq_traj, "trajectories diverged at workers={workers}");
            assert_eq!(st, seq_stats, "stats diverged at workers={workers}");
        }
    }

    /// The pool-reuse contract: repeated fine-grained `run_until` steps
    /// dispatch batches to the *same* threads — the spawn counter (pool
    /// generation) stays at the worker count, however many steps run.
    #[test]
    fn pool_reuses_threads_across_run_until_steps() {
        let ft = ft4();
        let mut s = Simulator::new(
            &ft,
            sharded_cfg(2),
            Box::new(NoTagging),
            TestWorld::default(),
        );
        assert_eq!(s.pool_stats(), crate::pool::PoolStats::default());
        let (a, b) = (ft.host(0, 0, 0), ft.host(2, 1, 1));
        for sport in 0..30u16 {
            one_packet(&mut s, flow(&ft, a, b, 5500 + sport), a);
        }
        let steps = 40u64;
        for i in 1..=steps {
            s.run_until(Nanos(i * 100_000));
        }
        let st = s.pool_stats();
        assert_eq!(st.threads, 2);
        assert_eq!(
            st.spawned_total, 2,
            "stepping must reuse the persistent workers, not respawn"
        );
        assert_eq!(st.batches, steps, "one dispatched batch per run_until");
        assert_eq!(s.world.delivered.len(), 30);
        // Dropping the simulator parks nothing: the pool joins its threads.
        drop(s);
    }

    /// `shard_workers == 0` is the inline mode: windowed rounds on the
    /// calling thread, no pool threads ever spawned.
    #[test]
    fn inline_mode_spawns_no_threads() {
        let ft = ft4();
        let mut s = Simulator::new(
            &ft,
            sharded_cfg(0),
            Box::new(NoTagging),
            TestWorld::default(),
        );
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        one_packet(&mut s, flow(&ft, a, b, 1), a);
        s.run_until(Nanos::from_millis(10));
        assert_eq!(s.world.delivered.len(), 1);
        assert_eq!(s.pool_stats(), crate::pool::PoolStats::default());
    }

    /// A panicking world takes the pooled run down loudly — and the pool
    /// survives: the same simulator config can run again afterwards.
    #[test]
    fn pooled_run_survives_world_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        struct BombWorld {
            armed: bool,
        }
        impl World for BombWorld {
            fn on_packet(&mut self, _api: &mut HostApi<'_>, _pkt: Packet) {
                if self.armed {
                    panic!("world exploded");
                }
            }
            fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
        }
        let ft = ft4();
        let mut s = Simulator::new(
            &ft,
            sharded_cfg(2),
            Box::new(NoTagging),
            BombWorld { armed: true },
        );
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let send = |s: &mut Simulator<BombWorld>, sport: u16| {
            let pkt = Packet::data(0, flow(&ft, a, b, sport), 0, 1000, s.now());
            s.send_from(a, pkt);
        };
        send(&mut s, 7);
        let err = catch_unwind(AssertUnwindSafe(|| s.run_until(Nanos::from_millis(10))));
        assert!(err.is_err(), "the edge panic must propagate");
        // The workers were unblocked (barrier abort) and are parked again;
        // a fresh run reuses the same pool — no respawn even across the
        // caught panic.
        s.world.armed = false;
        send(&mut s, 8);
        s.run_until(Nanos::from_millis(20));
        assert_eq!(s.pool_stats().threads, 2);
        assert_eq!(s.pool_stats().spawned_total, 2);
    }

    /// `now()` and `pending_events()` observed at a `run_until` boundary
    /// that lands mid-flight ("mid-window": unaligned to any event time or
    /// lookahead window) must match the sequential engine exactly, and
    /// resuming from that boundary must converge to the same final state.
    #[test]
    fn mid_window_observation_matches_sequential() {
        let ft = ft4();
        let inject = |s: &mut Simulator<TestWorld>| {
            let (a, b) = (ft.host(0, 0, 0), ft.host(2, 1, 1));
            for sport in 0..40u16 {
                one_packet(s, flow(&ft, a, b, 4000 + sport), a);
            }
        };
        let mut se = sim(&ft);
        let mut sh = Simulator::new(
            &ft,
            sharded_cfg(2),
            Box::new(NoTagging),
            TestWorld::default(),
        );
        inject(&mut se);
        inject(&mut sh);
        // 40 packets serialize for 120 us each on the source NIC; stopping
        // at 123.457 us lands mid-stream with events still pending.
        let mid = Nanos(123_457);
        se.run_until(mid);
        sh.run_until(mid);
        assert_eq!(sh.now(), se.now());
        assert_eq!(sh.now(), mid, "clock clamps up to the run horizon");
        assert_eq!(sh.pending_events(), se.pending_events());
        assert!(
            sh.pending_events() > 0,
            "boundary must land mid-flight for this test to bite"
        );
        se.run_until(Nanos::from_secs(2));
        sh.run_until(Nanos::from_secs(2));
        assert_eq!(sh.now(), se.now());
        assert_eq!(sh.pending_events(), 0);
        assert_eq!(sh.stats, se.stats);
    }

    /// A zero cross-shard latency leaves no conservative lookahead: the
    /// facade must fall back to the sequential driver (and still run).
    #[test]
    fn zero_lookahead_falls_back_to_sequential() {
        let ft = ft4();
        let mut cfg = sharded_cfg(0);
        cfg.packet_out_latency = Nanos::ZERO;
        let mut s = Simulator::new(&ft, cfg, Box::new(NoTagging), TestWorld::default());
        assert_eq!(s.effective_engine(), EngineKind::Sequential);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        one_packet(&mut s, flow(&ft, a, b, 1), a);
        s.run_until(Nanos::from_millis(10));
        assert_eq!(s.world.delivered.len(), 1);
        // With positive lookahead the same config shards.
        let s2 = Simulator::new(
            &ft,
            sharded_cfg(0),
            Box::new(NoTagging),
            TestWorld::default(),
        );
        assert_eq!(s2.effective_engine(), EngineKind::Sharded);
    }

    /// An event stamped exactly `Nanos::MAX` (saturated timer delay) is
    /// "never": it fires on neither engine, and `run_to_completion(MAX)`
    /// still terminates with the event left pending — identically.
    #[test]
    fn saturated_timestamp_never_fires_on_either_engine() {
        let ft = ft4();
        let run = |cfg: SimConfig| {
            let mut s = Simulator::new(&ft, cfg, Box::new(NoTagging), TestWorld::default());
            let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
            s.schedule_timer(a, Nanos::MAX, 7); // saturates to Nanos::MAX
            one_packet(&mut s, flow(&ft, a, b, 42), a);
            s.run_to_completion(Nanos::MAX);
            (s.world.delivered.len(), s.pending_events(), s.stats.clone())
        };
        let seq = run(SimConfig::for_tests());
        assert_eq!(seq.0, 1, "the real packet is delivered");
        assert_eq!(seq.1, 1, "the saturated timer stays pending forever");
        for workers in [1usize, 2] {
            assert_eq!(run(sharded_cfg(workers)), seq, "workers={workers}");
        }
    }

    /// `run_to_completion(Nanos::MAX)` must terminate on every driver
    /// once the queues drain (regression: the threaded rounds once spun
    /// forever because `gmin > MAX` is unsatisfiable).
    #[test]
    fn run_to_completion_drains_on_all_drivers() {
        let ft = ft4();
        for workers in [1usize, 2] {
            let mut s = Simulator::new(
                &ft,
                sharded_cfg(workers),
                Box::new(NoTagging),
                TestWorld::default(),
            );
            let (a, b) = (ft.host(0, 0, 0), ft.host(2, 0, 1));
            for sport in 0..10u16 {
                one_packet(&mut s, flow(&ft, a, b, 100 + sport), a);
            }
            s.run_to_completion(Nanos::MAX);
            assert_eq!(s.pending_events(), 0, "workers={workers}");
            assert_eq!(s.world.delivered.len(), 10, "workers={workers}");
        }
    }

    /// Determinism also holds run-to-run on the sharded engine.
    #[test]
    fn sharded_determinism_under_fixed_seed() {
        let ft = ft4();
        let t = Nanos::from_millis(400);
        let (s1, t1) = mixed_run(&ft, sharded_cfg(2), t);
        let (s2, t2) = mixed_run(&ft, sharded_cfg(2), t);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    /// Punting through the controller (cross-shard in both directions:
    /// punt to the edge, packet-out back into the fabric) is identical on
    /// both engines.
    #[test]
    fn sharded_punt_roundtrip_matches_sequential() {
        let ft = ft4();
        let run = |cfg: SimConfig| {
            let world = TestWorld {
                reinject_punts: true,
                ..Default::default()
            };
            let mut s = Simulator::new(&ft, cfg, Box::new(PushAlways), world);
            let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
            for sport in 0..8u16 {
                one_packet(&mut s, flow(&ft, a, b, 9500 + sport), a);
            }
            s.run_until(Nanos::from_secs(1));
            (
                s.stats.clone(),
                s.world.punts.len(),
                s.world
                    .delivered
                    .iter()
                    .map(|(h, p)| (*h, p.uid))
                    .collect::<Vec<_>>(),
            )
        };
        let seq = run(SimConfig::for_tests());
        assert!(seq.1 > 0, "tags must punt");
        assert_eq!(run(sharded_cfg(1)), seq);
        assert_eq!(run(sharded_cfg(2)), seq);
    }
}
