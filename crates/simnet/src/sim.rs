//! The discrete-event simulator: switches with match-action forwarding,
//! output-queued ports, fault injection, tag policies, and the controller
//! slow path.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultState, LoadBalance, Quirk, SwitchQuirks};
use crate::packet::Packet;
use crate::stats::{DropReason, DropRecord, SimStats};
use crate::traits::{CtrlAction, CtrlApi, HostAction, HostApi, Punt, TagPolicy, World};
use pathdump_topology::{
    ecmp_hash, HostId, Nanos, Peer, PortNo, RouteTables, SwitchId, Tier, Topology, UpDownRouting,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One egress queue (switch port or host NIC).
#[derive(Debug, Default)]
struct PortState {
    q: VecDeque<Packet>,
    busy: bool,
    fault: FaultState,
}

/// Dynamic state of one switch.
#[derive(Debug)]
struct SwitchState {
    lb: LoadBalance,
    quirks: SwitchQuirks,
    ports: Vec<PortState>,
}

/// The packet-level network simulator.
///
/// Generic over a [`World`] — the edge logic (transport engines, PathDump
/// agents, controller) — so harnesses retain typed access via
/// [`Simulator::world`].
pub struct Simulator<W: World> {
    cfg: SimConfig,
    topo: Topology,
    routes: RouteTables,
    switches: Vec<SwitchState>,
    nics: Vec<PortState>,
    tag_policy: Box<dyn TagPolicy>,
    /// The edge logic driving and observing the network.
    pub world: W,
    clock: Nanos,
    queue: EventQueue,
    rng: SmallRng,
    next_uid: u64,
    /// Counters (see [`SimStats`]).
    pub stats: SimStats,
}

impl<W: World> Simulator<W> {
    /// Builds a simulator over a routed topology.
    pub fn new<R: UpDownRouting + ?Sized>(
        routing: &R,
        cfg: SimConfig,
        tag_policy: Box<dyn TagPolicy>,
        world: W,
    ) -> Self {
        let topo = routing.topology().clone();
        let routes = RouteTables::build(routing);
        let switches: Vec<SwitchState> = topo
            .switches
            .iter()
            .map(|sw| SwitchState {
                lb: LoadBalance::default(),
                quirks: SwitchQuirks::default(),
                ports: sw.ports.iter().map(|_| PortState::default()).collect(),
            })
            .collect();
        let nics = (0..topo.num_hosts())
            .map(|_| PortState::default())
            .collect();
        let ports_per_switch: Vec<usize> = topo.switches.iter().map(|s| s.ports.len()).collect();
        let stats = SimStats::new(topo.num_switches(), &ports_per_switch, topo.num_hosts());
        Simulator {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            routes,
            switches,
            nics,
            tag_policy,
            world,
            clock: Nanos::ZERO,
            queue: EventQueue::new(),
            next_uid: 0,
            stats,
            topo,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Allocates a unique packet ID.
    pub fn alloc_uid(&mut self) -> u64 {
        self.next_uid += 1;
        self.next_uid
    }

    // --- fault & policy installation -------------------------------------

    /// Looks up the egress port of the directed link `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if the switches are not adjacent.
    pub fn link_port(&self, from: SwitchId, to: SwitchId) -> PortNo {
        self.topo
            .switch(from)
            .port_towards(to)
            .unwrap_or_else(|| panic!("{from} and {to} are not adjacent"))
    }

    /// Sets the fault state of the directed link `from -> to`.
    pub fn set_directed_fault(&mut self, from: SwitchId, to: SwitchId, fault: FaultState) {
        let port = self.link_port(from, to);
        self.switches[from.index()].ports[port.index()].fault = fault;
    }

    /// Reads the fault state of the directed link `from -> to`.
    pub fn directed_fault(&self, from: SwitchId, to: SwitchId) -> FaultState {
        let port = self.link_port(from, to);
        self.switches[from.index()].ports[port.index()].fault
    }

    /// Takes the undirected link `a <-> b` down (both directions).
    pub fn set_link_down(&mut self, a: SwitchId, b: SwitchId, down: bool) {
        for (x, y) in [(a, b), (b, a)] {
            let port = self.link_port(x, y);
            self.switches[x.index()].ports[port.index()].fault.down = down;
        }
    }

    /// Sets the fault state of a host-facing ToR egress (the "interface
    /// toward host" direction used for drops-on-server scenarios).
    pub fn set_host_downlink_fault(&mut self, host: HostId, fault: FaultState) {
        let hm = self.topo.host(host).clone();
        self.switches[hm.tor.index()].ports[hm.tor_port.index()].fault = fault;
    }

    /// Sets the fault state of a host NIC (uplink direction).
    pub fn set_nic_fault(&mut self, host: HostId, fault: FaultState) {
        self.nics[host.index()].fault = fault;
    }

    /// Sets the load-balance policy of one switch.
    pub fn set_lb(&mut self, sw: SwitchId, lb: LoadBalance) {
        self.switches[sw.index()].lb = lb;
    }

    /// Sets the load-balance policy of every switch.
    pub fn set_lb_all(&mut self, lb: LoadBalance) {
        for s in &mut self.switches {
            s.lb = lb.clone();
        }
    }

    /// Installs a forwarding quirk on a switch.
    pub fn install_quirk(&mut self, sw: SwitchId, quirk: Quirk) {
        self.switches[sw.index()].quirks.install(quirk);
    }

    /// Removes all quirks from a switch.
    pub fn clear_quirks(&mut self, sw: SwitchId) {
        self.switches[sw.index()].quirks.clear();
    }

    // --- injection --------------------------------------------------------

    /// Schedules `World::on_timer(host, token)` after `delay`.
    pub fn schedule_timer(&mut self, host: HostId, delay: Nanos, token: u64) {
        self.queue.push(
            self.clock.saturating_add(delay),
            EventKind::Timer { host, token },
        );
    }

    /// Transmits a packet from `host` (stamping uid/ttl/sent time).
    pub fn send_from(&mut self, host: HostId, mut pkt: Packet) {
        if pkt.uid == 0 {
            pkt.uid = self.alloc_uid();
        }
        pkt.ttl = self.cfg.ttl;
        pkt.sent_at = self.clock;
        self.stats.injected_pkts += 1;
        self.nic_enqueue(host, pkt);
    }

    // --- run loop ----------------------------------------------------------

    /// Processes events until simulated time `t` (inclusive); the clock ends
    /// at `t` even if the queue drains earlier.
    pub fn run_until(&mut self, t: Nanos) {
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            self.clock = ev.at;
            self.stats.events += 1;
            self.dispatch(ev.kind);
        }
        if t > self.clock && t != Nanos::MAX {
            self.clock = t;
        }
    }

    /// Runs until the event queue drains (or `hard_cap` is reached).
    pub fn run_to_completion(&mut self, hard_cap: Nanos) {
        self.run_until(hard_cap);
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::SwitchRx { sw, in_port, pkt } => self.handle_switch_rx(sw, in_port, pkt),
            EventKind::PortTx { sw, port } => self.handle_port_tx(sw, port),
            EventKind::HostRx { host, pkt } => self.handle_host_rx(host, pkt),
            EventKind::HostTx { host } => self.handle_host_tx(host),
            EventKind::Timer { host, token } => self.handle_timer(host, token),
            EventKind::CtrlRx { punt } => self.handle_ctrl_rx(punt),
        }
    }

    // --- switch dataplane ---------------------------------------------------

    fn handle_switch_rx(&mut self, sw: SwitchId, in_port: Option<PortNo>, mut pkt: Packet) {
        self.stats.switches[sw.index()].rx_pkts += 1;
        if self.cfg.record_ground_truth {
            pkt.gt_path.push(sw);
        }

        // ASIC limit: a packet carrying more tags than the ASIC parses
        // triggers a rule miss and goes to the controller (§3.1).
        if pkt.headers.tag_count() > self.cfg.asic_tag_limit {
            self.stats.switches[sw.index()].punts += 1;
            let punt = Punt {
                sw,
                in_port,
                pkt,
                punted_at: self.clock,
            };
            self.queue.push(
                self.clock.saturating_add(self.cfg.punt_latency),
                EventKind::CtrlRx { punt },
            );
            return;
        }

        if pkt.ttl == 0 {
            self.stats.switches[sw.index()].ttl_drops += 1;
            let rec = DropRecord {
                time: self.clock,
                sw: Some(sw),
                port: in_port,
                reason: DropReason::TtlExpired,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            self.stats.log_drop(self.cfg.collect_drop_log, rec);
            return;
        }
        pkt.ttl -= 1;

        let Some(dst_host) = self.topo.host_by_ip(pkt.flow.dst_ip) else {
            self.drop_no_route(sw, &pkt);
            return;
        };
        let (dst_tor, dst_port) = {
            let hm = self.topo.host(dst_host);
            (hm.tor, hm.tor_port)
        };

        // Canonical candidates under healthy up-down routing.
        let candidates: Vec<PortNo> = if dst_tor == sw {
            vec![dst_port]
        } else {
            self.routes.candidates_to_tor(sw, dst_tor).to_vec()
        };

        // Quirks (misconfigurations) override routing entirely.
        let quirk_pick =
            self.switches[sw.index()]
                .quirks
                .resolve(&pkt.flow, pkt.flow_size_hint, &candidates);

        let out_port = match quirk_pick {
            Some(p) => Some(p),
            None => {
                let usable: Vec<PortNo> = candidates
                    .iter()
                    .copied()
                    .filter(|p| self.switches[sw.index()].ports[p.index()].fault.usable())
                    .collect();
                if !usable.is_empty() {
                    self.pick_egress(sw, &candidates, &usable, &pkt)
                } else {
                    // Failover: bounce out of a usable switch-facing port
                    // other than the ingress (the "simple failover mechanism"
                    // of §4.1's testbed), preferring lower-tier peers — a
                    // bounce toward the edge keeps the detour inside the pod
                    // where an alternate up-path exists.
                    let rank = |t: Tier| match t {
                        Tier::Tor => 0u8,
                        Tier::Agg => 1,
                        Tier::Core => 2,
                    };
                    let own_rank = rank(self.topo.switch(sw).tier);
                    let all: Vec<(PortNo, u8)> = self
                        .topo
                        .switch_neighbors(sw)
                        .into_iter()
                        .filter(|(p, _)| {
                            Some(*p) != in_port
                                && self.switches[sw.index()].ports[p.index()].fault.usable()
                        })
                        .map(|(p, nb)| (p, rank(self.topo.switch(nb).tier)))
                        .collect();
                    let lower: Vec<PortNo> = all
                        .iter()
                        .filter(|(_, r)| *r < own_rank)
                        .map(|(p, _)| *p)
                        .collect();
                    let fallback: Vec<PortNo> = if lower.is_empty() {
                        all.into_iter().map(|(p, _)| p).collect()
                    } else {
                        lower
                    };
                    self.pick_egress(sw, &fallback, &fallback, &pkt)
                }
            }
        };

        let Some(out_port) = out_port else {
            self.drop_no_route(sw, &pkt);
            return;
        };

        // Trajectory tagging (push_vlan and friends) happens as part of the
        // forwarding action set.
        self.tag_policy
            .on_forward(sw, in_port, out_port, &mut pkt.headers);

        self.switch_enqueue(sw, out_port, pkt);
    }

    /// Picks one egress among `usable` (all drawn from `canonical`, whose
    /// order anchors WeightedSpray weights).
    fn pick_egress(
        &mut self,
        sw: SwitchId,
        canonical: &[PortNo],
        usable: &[PortNo],
        pkt: &Packet,
    ) -> Option<PortNo> {
        if usable.is_empty() {
            return None;
        }
        if usable.len() == 1 {
            return Some(usable[0]);
        }
        match &self.switches[sw.index()].lb {
            LoadBalance::Ecmp => {
                let salt = 0x9E37_79B9_7F4A_7C15u64 ^ (sw.0 as u64);
                let h = ecmp_hash(&pkt.flow, salt);
                Some(usable[(h % usable.len() as u64) as usize])
            }
            LoadBalance::Spray => {
                let i = self.rng.gen_range(0..usable.len());
                Some(usable[i])
            }
            LoadBalance::WeightedSpray(weights) => {
                let w: Vec<u64> = usable
                    .iter()
                    .map(|p| {
                        canonical
                            .iter()
                            .position(|c| c == p)
                            .and_then(|i| weights.get(i))
                            .copied()
                            .unwrap_or(1) as u64
                    })
                    .collect();
                let total: u64 = w.iter().sum::<u64>().max(1);
                let mut x = self.rng.gen_range(0..total);
                for (i, wi) in w.iter().enumerate() {
                    if x < *wi {
                        return Some(usable[i]);
                    }
                    x -= wi;
                }
                Some(*usable.last().expect("non-empty"))
            }
        }
    }

    fn drop_no_route(&mut self, sw: SwitchId, pkt: &Packet) {
        self.stats.switches[sw.index()].no_route_drops += 1;
        let rec = DropRecord {
            time: self.clock,
            sw: Some(sw),
            port: None,
            reason: DropReason::NoRoute,
            flow: pkt.flow,
            uid: pkt.uid,
        };
        self.stats.log_drop(self.cfg.collect_drop_log, rec);
    }

    fn switch_enqueue(&mut self, sw: SwitchId, port: PortNo, pkt: Packet) {
        let cap = self.cfg.fabric_link.queue_pkts;
        let st = &mut self.switches[sw.index()].ports[port.index()];
        if st.q.len() >= cap {
            self.stats.switch_ports[sw.index()][port.index()].queue_drops += 1;
            let rec = DropRecord {
                time: self.clock,
                sw: Some(sw),
                port: Some(port),
                reason: DropReason::QueueFull,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            self.stats.log_drop(self.cfg.collect_drop_log, rec);
            return;
        }
        st.q.push_back(pkt);
        if !st.busy {
            st.busy = true;
            let tx = self
                .cfg
                .fabric_link
                .tx_time(st.q.front().expect("just pushed").wire_size());
            self.queue.push(
                self.clock.saturating_add(tx),
                EventKind::PortTx { sw, port },
            );
        }
    }

    fn handle_port_tx(&mut self, sw: SwitchId, port: PortNo) {
        let pkt = {
            let st = &mut self.switches[sw.index()].ports[port.index()];
            st.q.pop_front().expect("PortTx with empty queue")
        };
        let counters = &mut self.stats.switch_ports[sw.index()][port.index()];
        counters.tx_pkts += 1;
        counters.tx_bytes += pkt.wire_size() as u64;

        let fault = self.switches[sw.index()].ports[port.index()].fault;
        let mut dropped: Option<DropReason> = None;
        if fault.down {
            self.stats.switch_ports[sw.index()][port.index()].down_drops += 1;
            dropped = Some(DropReason::LinkDown);
        } else if fault.blackhole {
            self.stats.switch_ports[sw.index()][port.index()].blackhole_drops += 1;
            dropped = Some(DropReason::Blackhole);
        } else if fault.silent_drop_rate > 0.0 && self.rng.gen::<f64>() < fault.silent_drop_rate {
            self.stats.switch_ports[sw.index()][port.index()].silent_drops += 1;
            dropped = Some(DropReason::SilentRandom);
        }

        if let Some(reason) = dropped {
            let rec = DropRecord {
                time: self.clock,
                sw: Some(sw),
                port: Some(port),
                reason,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            self.stats.log_drop(self.cfg.collect_drop_log, rec);
        } else {
            let arrive = self.clock.saturating_add(self.cfg.fabric_link.prop_delay);
            match self.topo.peer(sw, port) {
                Peer::Switch {
                    sw: nsw,
                    port: nport,
                } => self.queue.push(
                    arrive,
                    EventKind::SwitchRx {
                        sw: nsw,
                        in_port: Some(nport),
                        pkt,
                    },
                ),
                Peer::Host(h) => self.queue.push(arrive, EventKind::HostRx { host: h, pkt }),
                Peer::Unconnected => self.drop_no_route(sw, &pkt),
            }
        }

        // Start serializing the next head-of-line packet, if any.
        let st = &mut self.switches[sw.index()].ports[port.index()];
        if let Some(front) = st.q.front() {
            let tx = self.cfg.fabric_link.tx_time(front.wire_size());
            self.queue.push(
                self.clock.saturating_add(tx),
                EventKind::PortTx { sw, port },
            );
        } else {
            st.busy = false;
        }
    }

    // --- host edge -----------------------------------------------------------

    fn nic_enqueue(&mut self, host: HostId, pkt: Packet) {
        let cap = self.cfg.host_link.queue_pkts;
        let nic = &mut self.nics[host.index()];
        if nic.q.len() >= cap {
            self.stats.host_nics[host.index()].queue_drops += 1;
            let rec = DropRecord {
                time: self.clock,
                sw: None,
                port: None,
                reason: DropReason::QueueFull,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            self.stats.log_drop(self.cfg.collect_drop_log, rec);
            return;
        }
        nic.q.push_back(pkt);
        if !nic.busy {
            nic.busy = true;
            let tx = self
                .cfg
                .host_link
                .tx_time(nic.q.front().expect("just pushed").wire_size());
            self.queue
                .push(self.clock.saturating_add(tx), EventKind::HostTx { host });
        }
    }

    fn handle_host_tx(&mut self, host: HostId) {
        let pkt = {
            let nic = &mut self.nics[host.index()];
            nic.q.pop_front().expect("HostTx with empty queue")
        };
        let counters = &mut self.stats.host_nics[host.index()];
        counters.tx_pkts += 1;
        counters.tx_bytes += pkt.wire_size() as u64;

        let fault = self.nics[host.index()].fault;
        let mut dropped: Option<DropReason> = None;
        if fault.down {
            self.stats.host_nics[host.index()].down_drops += 1;
            dropped = Some(DropReason::LinkDown);
        } else if fault.blackhole {
            self.stats.host_nics[host.index()].blackhole_drops += 1;
            dropped = Some(DropReason::Blackhole);
        } else if fault.silent_drop_rate > 0.0 && self.rng.gen::<f64>() < fault.silent_drop_rate {
            self.stats.host_nics[host.index()].silent_drops += 1;
            dropped = Some(DropReason::SilentRandom);
        }

        if let Some(reason) = dropped {
            let rec = DropRecord {
                time: self.clock,
                sw: None,
                port: None,
                reason,
                flow: pkt.flow,
                uid: pkt.uid,
            };
            self.stats.log_drop(self.cfg.collect_drop_log, rec);
        } else {
            let hm = self.topo.host(host);
            let (tor, tor_port) = (hm.tor, hm.tor_port);
            let arrive = self.clock.saturating_add(self.cfg.host_link.prop_delay);
            self.queue.push(
                arrive,
                EventKind::SwitchRx {
                    sw: tor,
                    in_port: Some(tor_port),
                    pkt,
                },
            );
        }

        let nic = &mut self.nics[host.index()];
        if let Some(front) = nic.q.front() {
            let tx = self.cfg.host_link.tx_time(front.wire_size());
            self.queue
                .push(self.clock.saturating_add(tx), EventKind::HostTx { host });
        } else {
            nic.busy = false;
        }
    }

    fn handle_host_rx(&mut self, host: HostId, pkt: Packet) {
        self.stats.delivered_pkts += 1;
        self.stats.delivered_bytes += pkt.wire_size() as u64;
        let mut actions = Vec::new();
        {
            let mut api = HostApi {
                now: self.clock,
                host,
                actions: &mut actions,
                rng: &mut self.rng,
                next_uid: &mut self.next_uid,
            };
            self.world.on_packet(&mut api, pkt);
        }
        self.apply_host_actions(host, actions);
    }

    fn handle_timer(&mut self, host: HostId, token: u64) {
        let mut actions = Vec::new();
        {
            let mut api = HostApi {
                now: self.clock,
                host,
                actions: &mut actions,
                rng: &mut self.rng,
                next_uid: &mut self.next_uid,
            };
            self.world.on_timer(&mut api, token);
        }
        self.apply_host_actions(host, actions);
    }

    fn apply_host_actions(&mut self, host: HostId, actions: Vec<HostAction>) {
        for a in actions {
            match a {
                HostAction::Send(mut pkt) => {
                    if pkt.uid == 0 {
                        pkt.uid = self.alloc_uid();
                    }
                    pkt.ttl = self.cfg.ttl;
                    pkt.sent_at = self.clock;
                    self.stats.injected_pkts += 1;
                    self.nic_enqueue(host, pkt);
                }
                HostAction::Timer { delay, token } => {
                    self.queue.push(
                        self.clock.saturating_add(delay),
                        EventKind::Timer { host, token },
                    );
                }
            }
        }
    }

    fn handle_ctrl_rx(&mut self, punt: Punt) {
        let mut actions = Vec::new();
        {
            let mut api = CtrlApi {
                now: self.clock,
                actions: &mut actions,
            };
            self.world.on_punt(&mut api, punt);
        }
        for a in actions {
            match a {
                CtrlAction::PacketOut { sw, in_port, pkt } => {
                    self.queue.push(
                        self.clock.saturating_add(self.cfg.packet_out_latency),
                        EventKind::SwitchRx { sw, in_port, pkt },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TagHeaders;
    use crate::traits::NoTagging;
    use pathdump_topology::{FatTree, FatTreeParams, FlowId, Path, MILLIS, SECONDS};

    /// Records deliveries and punts; can re-inject punted packets.
    #[derive(Default)]
    struct TestWorld {
        delivered: Vec<(HostId, Packet)>,
        punts: Vec<Punt>,
        reinject_punts: bool,
    }

    impl World for TestWorld {
        fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet) {
            let host = api.host();
            self.delivered.push((host, pkt));
        }
        fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
        fn on_punt(&mut self, api: &mut CtrlApi<'_>, punt: Punt) {
            self.punts.push(punt.clone());
            if self.reinject_punts {
                let mut pkt = punt.pkt;
                pkt.headers.strip();
                api.packet_out(punt.sw, punt.in_port, pkt);
            }
        }
    }

    fn ft4() -> FatTree {
        FatTree::build(FatTreeParams { k: 4 })
    }

    fn sim(ft: &FatTree) -> Simulator<TestWorld> {
        Simulator::new(
            ft,
            SimConfig::for_tests(),
            Box::new(NoTagging),
            TestWorld::default(),
        )
    }

    fn flow(ft: &FatTree, src: HostId, dst: HostId, sport: u16) -> FlowId {
        let t = ft.topology();
        FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
    }

    fn one_packet(sim: &mut Simulator<TestWorld>, f: FlowId, src: HostId) {
        let pkt = Packet::data(0, f, 0, 1000, sim.now());
        sim.send_from(src, pkt);
    }

    #[test]
    fn delivers_same_tor() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 0, 1));
        one_packet(&mut s, flow(&ft, a, b, 1000), a);
        s.run_until(Nanos::from_millis(10));
        assert_eq!(s.world.delivered.len(), 1);
        let (h, pkt) = &s.world.delivered[0];
        assert_eq!(*h, b);
        assert_eq!(pkt.gt_path, vec![ft.tor(0, 0)]);
    }

    #[test]
    fn delivers_inter_pod_on_shortest_path() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(2, 1, 1));
        one_packet(&mut s, flow(&ft, a, b, 1000), a);
        s.run_until(Nanos::from_millis(10));
        assert_eq!(s.world.delivered.len(), 1);
        let gt = Path::new(s.world.delivered[0].1.gt_path.clone());
        let shortest = ft.all_paths(a, b);
        assert!(shortest.contains(&gt), "gt {gt} not a shortest path");
    }

    #[test]
    fn ecmp_spreads_distinct_flows() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        for sport in 0..64 {
            one_packet(&mut s, flow(&ft, a, b, 2000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 64);
        let distinct: std::collections::HashSet<Vec<SwitchId>> = s
            .world
            .delivered
            .iter()
            .map(|(_, p)| p.gt_path.clone())
            .collect();
        assert!(
            distinct.len() >= 3,
            "ECMP used only {} of 4 paths",
            distinct.len()
        );
    }

    #[test]
    fn ecmp_pins_single_flow() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 777);
        for _ in 0..32 {
            one_packet(&mut s, f, a);
        }
        s.run_until(Nanos::from_millis(100));
        let distinct: std::collections::HashSet<Vec<SwitchId>> = s
            .world
            .delivered
            .iter()
            .map(|(_, p)| p.gt_path.clone())
            .collect();
        assert_eq!(distinct.len(), 1, "one flow must stay on one ECMP path");
    }

    #[test]
    fn spraying_uses_all_paths() {
        let ft = ft4();
        let mut s = sim(&ft);
        s.set_lb_all(LoadBalance::Spray);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 777);
        for _ in 0..200 {
            one_packet(&mut s, f, a);
        }
        s.run_until(Nanos::from_secs(1));
        let distinct: std::collections::HashSet<Vec<SwitchId>> = s
            .world
            .delivered
            .iter()
            .map(|(_, p)| p.gt_path.clone())
            .collect();
        assert_eq!(distinct.len(), 4, "spraying must hit all 4 paths");
    }

    #[test]
    fn weighted_spray_skews() {
        let ft = ft4();
        let mut s = sim(&ft);
        s.set_lb_all(LoadBalance::Spray);
        // Bias the source ToR's uplinks 9:1.
        s.set_lb(ft.tor(0, 0), LoadBalance::WeightedSpray(vec![9, 1]));
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 777);
        for _ in 0..100 {
            one_packet(&mut s, f, a);
        }
        s.run_until(Nanos::from_secs(2));
        let via_agg0 = s
            .world
            .delivered
            .iter()
            .filter(|(_, p)| p.gt_path.contains(&ft.agg(0, 0)))
            .count();
        let total = s.world.delivered.len();
        assert!(total >= 95, "most packets must arrive, got {total}");
        assert!(
            via_agg0 > total * 7 / 10,
            "expected heavy skew toward agg0: {via_agg0}/{total}"
        );
    }

    #[test]
    fn link_down_triggers_reroute() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        // Kill ToR(0,0) -> Agg(0,0); intra-pod flows must all use agg 1.
        s.set_link_down(ft.tor(0, 0), ft.agg(0, 0), true);
        for sport in 0..16 {
            one_packet(&mut s, flow(&ft, a, b, 3000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 16);
        for (_, p) in &s.world.delivered {
            assert_eq!(p.gt_path, vec![ft.tor(0, 0), ft.agg(0, 1), ft.tor(0, 1)]);
        }
    }

    #[test]
    fn full_uplink_failure_bounces() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        // At Agg(0,0): both core uplinks down; packet must bounce and still
        // get delivered via a longer path.
        s.set_link_down(ft.agg(0, 0), ft.core(0), true);
        s.set_link_down(ft.agg(0, 0), ft.core(1), true);
        // Pin the flow through agg(0,0): only that agg's uplinks are dead.
        s.install_quirk(
            ft.tor(0, 0),
            Quirk::ForwardFlowTo {
                flow: flow(&ft, a, b, 4000),
                port: s.link_port(ft.tor(0, 0), ft.agg(0, 0)),
            },
        );
        one_packet(&mut s, flow(&ft, a, b, 4000), a);
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 1);
        let gt = &s.world.delivered[0].1.gt_path;
        assert!(gt.len() > 5, "bounce path must be longer: {gt:?}");
        assert_eq!(gt.last(), Some(&ft.tor(1, 0)));
    }

    #[test]
    fn silent_drops_hidden_from_visible_counters() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        let victim = ft.agg(0, 0);
        s.set_directed_fault(
            victim,
            ft.tor(0, 1),
            FaultState {
                silent_drop_rate: 1.0,
                ..FaultState::HEALTHY
            },
        );
        // Force all flows through agg(0,0) by killing the path via agg(0,1).
        s.set_link_down(ft.tor(0, 0), ft.agg(0, 1), true);
        for sport in 0..20 {
            one_packet(&mut s, flow(&ft, a, b, 5000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert_eq!(s.world.delivered.len(), 0);
        let port = s.link_port(victim, ft.tor(0, 1));
        let c = s.stats.port(victim, port);
        assert_eq!(c.silent_drops, 20);
        assert_eq!(c.visible_drops(), 0, "silent drops must stay invisible");
        assert_eq!(c.tx_pkts, 20, "interface counters look healthy");
    }

    #[test]
    fn blackhole_drops_everything() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        s.set_directed_fault(
            ft.tor(0, 0),
            ft.agg(0, 0),
            FaultState {
                blackhole: true,
                ..FaultState::HEALTHY
            },
        );
        s.set_link_down(ft.tor(0, 0), ft.agg(0, 1), true);
        for sport in 0..10 {
            one_packet(&mut s, flow(&ft, a, b, 6000 + sport), a);
        }
        s.run_until(Nanos::from_millis(100));
        assert!(s.world.delivered.is_empty());
        let port = s.link_port(ft.tor(0, 0), ft.agg(0, 0));
        assert_eq!(s.stats.port(ft.tor(0, 0), port).blackhole_drops, 10);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let ft = ft4();
        let mut cfg = SimConfig::for_tests();
        cfg.fabric_link.queue_pkts = 4;
        let mut s = Simulator::new(&ft, cfg, Box::new(NoTagging), TestWorld::default());
        // Two senders on different ToR host ports burst into one receiver.
        let (a, b, c) = (ft.host(0, 0, 0), ft.host(0, 0, 1), ft.host(0, 1, 0));
        for sport in 0..60 {
            one_packet(&mut s, flow(&ft, a, c, 7000 + sport), a);
            one_packet(&mut s, flow(&ft, b, c, 8000 + sport), b);
        }
        s.run_until(Nanos::from_secs(1));
        let drops: u64 = (0..2)
            .map(|t| {
                let sw = ft.agg(0, t);
                let p = s.link_port(sw, ft.tor(0, 1));
                s.stats.port(sw, p).queue_drops
            })
            .sum::<u64>()
            + {
                // Drops can also occur at the ToR's agg-facing uplinks.
                let sw = ft.tor(0, 0);
                (0..2)
                    .map(|aidx| {
                        let p = s.link_port(sw, ft.agg(0, aidx));
                        s.stats.port(sw, p).queue_drops
                    })
                    .sum::<u64>()
            }
            + {
                let sw = ft.tor(0, 1);
                let hm = ft.topology().host(c);
                s.stats.port(sw, hm.tor_port).queue_drops
            };
        assert!(
            drops > 0,
            "bursting 120 packets through cap-4 queues must drop"
        );
        assert!(s.world.delivered.len() < 120);
        assert!(!s.stats.drop_log.is_empty());
    }

    /// Tag policy that pushes a constant tag at every switch: after three
    /// switches the packet exceeds the ASIC limit and must be punted.
    struct PushAlways;
    impl TagPolicy for PushAlways {
        fn on_forward(&self, sw: SwitchId, _in: Option<PortNo>, _out: PortNo, h: &mut TagHeaders) {
            h.push_tag(sw.0 % 4096);
        }
    }

    #[test]
    fn three_tags_punt_to_controller() {
        let ft = ft4();
        let mut s = Simulator::new(
            &ft,
            SimConfig::for_tests(),
            Box::new(PushAlways),
            TestWorld::default(),
        );
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        one_packet(&mut s, flow(&ft, a, b, 9000), a);
        s.run_until(Nanos::from_secs(1));
        // tor pushes tag1, agg pushes tag2, core pushes tag3 -> the dst-pod
        // aggregate sees 3 tags and punts.
        assert_eq!(s.world.punts.len(), 1);
        assert_eq!(s.world.delivered.len(), 0);
        let punt = &s.world.punts[0];
        assert_eq!(punt.pkt.headers.tag_count(), 3);
        assert_eq!(ft.coords(punt.sw).0, pathdump_topology::Tier::Agg);
        assert_eq!(s.stats.total_punts(), 1);
    }

    #[test]
    fn controller_reinject_completes_delivery() {
        let ft = ft4();
        let world = TestWorld {
            reinject_punts: true,
            ..Default::default()
        };
        let mut s = Simulator::new(&ft, SimConfig::for_tests(), Box::new(PushAlways), world);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        one_packet(&mut s, flow(&ft, a, b, 9100), a);
        s.run_until(Nanos::from_secs(1));
        // After the controller strips tags and re-injects, the packet
        // accumulates tags again from the punting switch onward: agg pushes
        // one, dst ToR pushes one -> 2 tags, delivered.
        assert_eq!(s.world.punts.len(), 1);
        assert_eq!(s.world.delivered.len(), 1);
        // Punt latency dominates delivery time.
        let cfg = SimConfig::for_tests();
        assert!(s.world.delivered[0].1.sent_at == Nanos::ZERO);
        assert!(s.now() >= cfg.punt_latency);
    }

    #[test]
    fn ttl_backstops_quirk_loops() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let f = flow(&ft, a, b, 9200);
        // agg(0,0) -> core(0) -> agg(1,0) -> core(1) -> agg(0,0) loop.
        s.install_quirk(
            ft.agg(1, 0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.agg(1, 0), ft.core(1)),
            },
        );
        s.install_quirk(
            ft.core(1),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.core(1), ft.agg(0, 0)),
            },
        );
        s.install_quirk(
            ft.agg(0, 0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.agg(0, 0), ft.core(0)),
            },
        );
        s.install_quirk(
            ft.core(0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.core(0), ft.agg(1, 0)),
            },
        );
        // Pin the first hop into the loop.
        s.install_quirk(
            ft.tor(0, 0),
            Quirk::ForwardFlowTo {
                flow: f,
                port: s.link_port(ft.tor(0, 0), ft.agg(0, 0)),
            },
        );
        one_packet(&mut s, f, a);
        s.run_until(Nanos::from_secs(1));
        assert!(s.world.delivered.is_empty());
        let ttl_drops: u64 = s.stats.switches.iter().map(|c| c.ttl_drops).sum();
        assert_eq!(
            ttl_drops, 1,
            "loop must end in a TTL drop (no tags = no punt)"
        );
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let ft = ft4();
        let run = || {
            let mut s = sim(&ft);
            s.set_lb_all(LoadBalance::Spray);
            let (a, b) = (ft.host(0, 0, 0), ft.host(3, 1, 1));
            let f = flow(&ft, a, b, 1234);
            for _ in 0..100 {
                one_packet(&mut s, f, a);
            }
            s.run_until(Nanos(SECONDS));
            let paths: Vec<Vec<SwitchId>> = s
                .world
                .delivered
                .iter()
                .map(|(_, p)| p.gt_path.clone())
                .collect();
            (paths, s.stats.events)
        };
        let (p1, e1) = run();
        let (p2, e2) = run();
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn timers_fire_in_order() {
        let ft = ft4();
        #[derive(Default)]
        struct TimerWorld {
            fired: Vec<(u64, Nanos)>,
        }
        impl World for TimerWorld {
            fn on_packet(&mut self, _api: &mut HostApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
                self.fired.push((token, api.now()));
                if token == 1 {
                    api.set_timer(Nanos(5 * MILLIS), 3);
                }
            }
        }
        let mut s = Simulator::new(
            &ft,
            SimConfig::for_tests(),
            Box::new(NoTagging),
            TimerWorld::default(),
        );
        let h = ft.host(0, 0, 0);
        s.schedule_timer(h, Nanos(10 * MILLIS), 2);
        s.schedule_timer(h, Nanos(MILLIS), 1);
        s.run_until(Nanos::from_secs(1));
        assert_eq!(
            s.world.fired,
            vec![
                (1, Nanos(MILLIS)),
                (3, Nanos(6 * MILLIS)),
                (2, Nanos(10 * MILLIS)),
            ]
        );
    }

    #[test]
    fn nic_silent_fault_applies() {
        let ft = ft4();
        let mut s = sim(&ft);
        let (a, b) = (ft.host(0, 0, 0), ft.host(0, 0, 1));
        s.set_nic_fault(
            a,
            FaultState {
                silent_drop_rate: 1.0,
                ..FaultState::HEALTHY
            },
        );
        one_packet(&mut s, flow(&ft, a, b, 1), a);
        s.run_until(Nanos::from_millis(10));
        assert!(s.world.delivered.is_empty());
        assert_eq!(s.stats.host_nics[a.index()].silent_drops, 1);
    }
}
