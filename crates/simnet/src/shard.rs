//! Pod sharding: the partition of the fabric into conservatively
//! synchronized event-loop shards, and the synchronization primitives
//! (round barrier, mailbox exchange) the windowed-round driver in
//! [`crate::driver`] runs on.
//!
//! # Partition
//!
//! Every switch with a `pod` coordinate joins its pod's shard; switches
//! without one (fat-tree cores) form one extra shard. Hosts, NICs, timers,
//! the [`crate::traits::World`] and the controller live on the **edge
//! shard**, driven by the calling thread — the world is a single `&mut`
//! object, and routing every host/controller callback through one shard is
//! what keeps its observation order identical to the sequential engine's.
//!
//! # Lookahead
//!
//! Cross-shard hops each carry a minimum latency: fabric propagation
//! (pod ↔ core, ToR → host delivery), host-NIC propagation (host → ToR),
//! punt latency (switch → controller), and packet-out latency
//! (controller → switch). The per-pair minima form the lookahead table; a
//! shard whose earliest pending event is at `t` cannot make anything
//! appear at shard `s` before `t + min_lat[·][s]`, so each round every
//! shard may safely process its events up to that horizon. Pods exchange
//! no direct messages (fat-tree pods only meet at cores), so two pods can
//! run up to two fabric hops apart.
//!
//! The window barriers are also the granularity at which the facade's
//! merged view (`now()`, `pending_events()`, stats, drop log) is defined:
//! inside `run_until` the shards are mid-window and unobservable; at every
//! `run_until` return the engines have converged on the identical state.

use crate::config::SimConfig;
use crate::event::EventKind;
use pathdump_topology::{Nanos, Peer, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// A cross-shard event in flight.
pub(crate) struct Outgoing {
    /// Destination shard (switch shard id, or [`ShardPlan::edge_shard`]).
    pub shard: usize,
    pub at: Nanos,
    pub key: u64,
    pub kind: EventKind,
}

/// The static sharding decision for one topology + configuration.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Number of switch shards (pods, plus one core shard when coreless
    /// switches exist). The edge shard is extra and always last.
    pub switch_shards: usize,
    /// Shard of each switch, indexed by `SwitchId::index()`.
    pub shard_of_switch: Vec<usize>,
    /// Rank of each switch within its shard (ascending global id).
    pub local_of_switch: Vec<usize>,
    /// `reach[from][to]`: min-plus closure of the direct-channel latency
    /// matrix — the minimum latency of any ≥1-hop causal chain from one
    /// shard to another (including back to itself, via e.g. pod → core →
    /// pod). The closure, not the direct latency, bounds horizons: an
    /// *empty* shard can still be woken by a neighbor and relay an event
    /// onward, so the safe bound on what can appear at shard `s` is
    /// `min over s' of (earliest pending event of s' + reach[s'][s])`.
    /// Indexed by shard id with the edge shard last.
    pub reach: Vec<Vec<u64>>,
    /// Smallest finite entry of `reach` (the global lookahead bound).
    pub lookahead: Nanos,
}

impl ShardPlan {
    /// Builds the plan for a topology under the given latency config.
    pub fn build(topo: &Topology, cfg: &SimConfig) -> Self {
        let n = topo.num_switches();
        // Pods indexed by their value; cores (pod = None) share one shard.
        let pods: Vec<u16> = topo
            .switches
            .iter()
            .filter_map(|s| s.pod)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let has_core = topo.switches.iter().any(|s| s.pod.is_none());
        let pod_shard = |pod: Option<u16>| -> usize {
            match pod {
                Some(p) => pods.binary_search(&p).expect("pod seen above"),
                None => pods.len(),
            }
        };
        let switch_shards = (pods.len() + usize::from(has_core)).max(1);
        let edge = switch_shards;

        let mut shard_of_switch = vec![0usize; n];
        let mut local_of_switch = vec![0usize; n];
        let mut counts = vec![0usize; switch_shards];
        for (i, sw) in topo.switches.iter().enumerate() {
            let s = pod_shard(sw.pod);
            shard_of_switch[i] = s;
            local_of_switch[i] = counts[s];
            counts[s] += 1;
        }

        let l_fab = cfg.fabric_link.prop_delay.0;
        let l_host = cfg.host_link.prop_delay.0;
        let l_punt = cfg.punt_latency.0;
        let l_po = cfg.packet_out_latency.0;

        let total = switch_shards + 1;
        let mut min_lat = vec![vec![u64::MAX; total]; total];
        let relax = |m: &mut Vec<Vec<u64>>, from: usize, to: usize, l: u64| {
            if l < m[from][to] {
                m[from][to] = l;
            }
        };
        for (i, sw) in topo.switches.iter().enumerate() {
            let s = shard_of_switch[i];
            // Punts reach the controller from any switch.
            relax(&mut min_lat, s, edge, l_punt);
            // Packet-outs reach any switch from the controller.
            relax(&mut min_lat, edge, s, l_po);
            for peer in &sw.ports {
                match *peer {
                    Peer::Switch { sw: nb, .. } => {
                        let d = shard_of_switch[nb.index()];
                        if d != s {
                            relax(&mut min_lat, s, d, l_fab);
                        }
                    }
                    Peer::Host(_) => {
                        // Delivery to a host NIC propagates on the fabric
                        // link class; the host's uplink uses the NIC class.
                        relax(&mut min_lat, s, edge, l_fab);
                        relax(&mut min_lat, edge, s, l_host);
                    }
                    Peer::Unconnected => {}
                }
            }
        }

        // Min-plus closure over ≥1-hop paths (Floyd–Warshall; saturating,
        // `u64::MAX` = unreachable). `reach[s][s]` is the cheapest round
        // trip through other shards, which is finite and matters: a shard
        // can cause events at *itself* via the core.
        let mut reach = min_lat.clone();
        for k in 0..total {
            for i in 0..total {
                if reach[i][k] == u64::MAX {
                    continue;
                }
                for j in 0..total {
                    let via = reach[i][k].saturating_add(reach[k][j]);
                    if via < reach[i][j] {
                        reach[i][j] = via;
                    }
                }
            }
        }

        let lookahead = Nanos(
            reach
                .iter()
                .flatten()
                .copied()
                .filter(|&l| l != u64::MAX)
                .min()
                .unwrap_or(0),
        );

        ShardPlan {
            switch_shards,
            shard_of_switch,
            local_of_switch,
            reach,
            lookahead,
        }
    }

    /// Shard id of the host/controller edge shard (always the last).
    pub fn edge_shard(&self) -> usize {
        self.switch_shards
    }

    /// Total shard count including the edge shard.
    pub fn total_shards(&self) -> usize {
        self.switch_shards + 1
    }

    /// Destination shard of an event.
    pub fn dest_shard(&self, kind: &EventKind) -> usize {
        match kind {
            EventKind::SwitchRx { sw, .. } | EventKind::PortTx { sw, .. } => {
                self.shard_of_switch[sw.index()]
            }
            EventKind::HostRx { .. }
            | EventKind::HostTx { .. }
            | EventKind::Timer { .. }
            | EventKind::CtrlRx { .. } => self.edge_shard(),
        }
    }

    /// True when the sharded drivers can run this plan: at least two
    /// switch shards and strictly positive lookahead on every channel.
    pub fn shardable(&self) -> bool {
        self.switch_shards >= 2 && self.lookahead > Nanos::ZERO
    }

    /// The horizon (exclusive) up to which shard `s` may process events,
    /// given the frozen per-shard earliest-pending-event snapshot. Every
    /// shard — including `s` itself, whose events can round-trip through
    /// the core — contributes `its earliest pending time + the cheapest
    /// causal chain from it to s`; nothing can appear at `s` below that.
    pub fn horizon(&self, s: usize, t_next: &[u64]) -> u64 {
        let mut h = u64::MAX;
        for (other, &tn) in t_next.iter().enumerate() {
            let l = self.reach[other][s];
            if l == u64::MAX {
                continue;
            }
            h = h.min(tn.saturating_add(l));
        }
        h
    }
}

/// A reusable round barrier that can be *aborted*: unlike
/// `std::sync::Barrier`, a participant that unwinds (see [`AbortGuard`])
/// wakes every blocked peer with a panic instead of deadlocking the run —
/// a worker crash must surface as a diagnostic, not a hang.
pub(crate) struct RoundBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    aborted: bool,
}

impl RoundBarrier {
    fn new(parties: usize) -> Self {
        RoundBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Blocks until all parties arrive (or the barrier is aborted).
    ///
    /// # Panics
    ///
    /// Panics if any participant aborted the barrier.
    pub fn wait(&self) {
        let mut st = self.state.lock().expect("barrier poisoned");
        assert!(!st.aborted, "a shard worker panicked; aborting the run");
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = st.generation;
        while st.generation == gen && !st.aborted {
            st = self.cv.wait(st).expect("barrier poisoned");
        }
        assert!(!st.aborted, "a shard worker panicked; aborting the run");
    }

    /// Marks the barrier aborted and wakes every waiter.
    pub fn abort(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.aborted = true;
        }
        self.cv.notify_all();
    }
}

/// Aborts the exchange's barrier if the holder unwinds, so one panicking
/// round participant takes the whole run down loudly.
pub(crate) struct AbortGuard<'a>(pub &'a Exchange);

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.barrier.abort();
        }
    }
}

/// One round-synchronized mailbox set: per-shard inboxes plus the frozen
/// `t_next` snapshot the horizon computation reads.
pub(crate) struct Exchange {
    pub inboxes: Vec<Mutex<Vec<Outgoing>>>,
    pub t_next: Vec<AtomicU64>,
    pub barrier: RoundBarrier,
}

impl Exchange {
    pub fn new(total_shards: usize, parties: usize) -> Self {
        Exchange {
            inboxes: (0..total_shards).map(|_| Mutex::new(Vec::new())).collect(),
            t_next: (0..total_shards)
                .map(|_| AtomicU64::new(u64::MAX))
                .collect(),
            barrier: RoundBarrier::new(parties),
        }
    }

    /// Splices one participant's whole per-destination batch into `shard`'s
    /// inbox: one lock and one append per shard per window, instead of a
    /// lock per message. `msgs` is drained and keeps its capacity for the
    /// next round.
    pub fn post_batch(&self, shard: usize, msgs: &mut Vec<Outgoing>) {
        if msgs.is_empty() {
            return;
        }
        self.inboxes[shard]
            .lock()
            .expect("inbox poisoned")
            .append(msgs);
    }

    /// Publishes shard `s`'s earliest pending time.
    pub fn publish(&self, s: usize, t: u64) {
        self.t_next[s].store(t, Ordering::Release);
    }

    /// Reads the full frozen snapshot (call between the two barriers).
    pub fn snapshot(&self, into: &mut Vec<u64>) {
        into.clear();
        into.extend(self.t_next.iter().map(|a| a.load(Ordering::Acquire)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FatTree, FatTreeParams, Tier, UpDownRouting};

    fn plan_k4() -> (FatTree, ShardPlan) {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let plan = ShardPlan::build(ft.topology(), &SimConfig::for_tests());
        (ft, plan)
    }

    #[test]
    fn partition_follows_pods_and_cores() {
        let (ft, plan) = plan_k4();
        assert_eq!(plan.switch_shards, 5, "4 pods + 1 core shard");
        assert_eq!(plan.edge_shard(), 5);
        for p in 0..4 {
            for i in 0..2 {
                assert_eq!(plan.shard_of_switch[ft.tor(p, i).index()], p);
                assert_eq!(plan.shard_of_switch[ft.agg(p, i).index()], p);
            }
        }
        for j in 0..4 {
            assert_eq!(plan.shard_of_switch[ft.core(j).index()], 4);
            assert_eq!(ft.topology().switch(ft.core(j)).tier, Tier::Core);
        }
        // Local ranks are dense and ascending within each shard.
        for s in 0..plan.switch_shards {
            let mut ranks: Vec<usize> = (0..ft.topology().num_switches())
                .filter(|&i| plan.shard_of_switch[i] == s)
                .map(|i| plan.local_of_switch[i])
                .collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (0..ranks.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lookahead_and_reach() {
        let (_, plan) = plan_k4();
        let cfg = SimConfig::for_tests();
        assert!(plan.shardable());
        // The binding lookahead is the host NIC propagation delay.
        assert_eq!(plan.lookahead, cfg.host_link.prop_delay);
        let fab = cfg.fabric_link.prop_delay.0;
        let host = cfg.host_link.prop_delay.0;
        // Pod -> core is one direct fabric hop.
        assert_eq!(plan.reach[0][4], fab);
        // Fat-tree pods exchange no direct links; the cheapest pod -> pod
        // chain is ToR -> host delivery -> NIC -> ToR (beating the two
        // fabric hops through the core), and the same loop is the cheapest
        // way for a pod to cause events at itself again.
        assert_eq!(plan.reach[0][1], fab + host);
        assert_eq!(plan.reach[0][0], fab + host);
        // Pod -> edge: ToR delivery beats the punt path.
        assert_eq!(plan.reach[0][plan.edge_shard()], fab);
        // Core -> edge: no hosts on cores; cheapest is core -> pod -> edge.
        assert_eq!(plan.reach[4][plan.edge_shard()], 2 * fab);
    }

    #[test]
    fn aborted_barrier_unblocks_waiters_with_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;
        let exch = Arc::new(Exchange::new(1, 2));
        let e2 = Arc::clone(&exch);
        let waiter = std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| e2.barrier.wait())).is_err()
        });
        // Simulate a peer that panics before arriving: its AbortGuard
        // fires abort() during unwinding.
        let e3 = Arc::clone(&exch);
        let _ = std::thread::spawn(move || {
            let _guard = AbortGuard(&e3);
            panic!("worker died");
        })
        .join();
        assert!(
            waiter.join().expect("waiter thread itself must not die"),
            "a blocked participant must panic on abort, not hang"
        );
        // Late arrivals also fail fast instead of blocking forever.
        assert!(catch_unwind(AssertUnwindSafe(|| exch.barrier.wait())).is_err());
    }

    #[test]
    fn zero_latency_disables_sharding() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut cfg = SimConfig::for_tests();
        cfg.host_link.prop_delay = Nanos::ZERO;
        let plan = ShardPlan::build(ft.topology(), &cfg);
        assert!(!plan.shardable());
    }

    #[test]
    fn horizon_uses_transitive_reach() {
        let (_, plan) = plan_k4();
        let cfg = SimConfig::for_tests();
        let fab = cfg.fabric_link.prop_delay.0;
        let host = cfg.host_link.prop_delay.0;
        let total = plan.total_shards();
        // Only pod 0 has work at t=1000; everyone else is empty. Pod 1's
        // horizon must still be bounded (pod 0 can wake the edge or the
        // core, which can wake pod 1) — the bug class the closure fixes:
        // direct-latency horizons would be unbounded here.
        let mut t_next = vec![u64::MAX; total];
        t_next[0] = 1000;
        assert_eq!(plan.horizon(1, &t_next), 1000 + fab + host);
        assert_eq!(plan.horizon(4, &t_next), 1000 + fab);
        // Pod 0 itself is bounded by its own cheapest relay loop.
        assert_eq!(plan.horizon(0, &t_next), 1000 + fab + host);
    }
}
