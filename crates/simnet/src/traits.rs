//! Extension points: tagging policy (CherryPick plugs in here), the host
//! "world" (transport + PathDump agents), and controller punt handling.

use crate::packet::{Packet, TagHeaders};
use pathdump_topology::{HostId, Nanos, PortNo, SwitchId};
use rand::rngs::SmallRng;

/// Switch-side trajectory tagging rules.
///
/// Called once per forwarded packet, *before* the packet is queued on its
/// egress port — the moment an OpenFlow `push_vlan` action would run. The
/// implementation in `pathdump-cherrypick` pushes ingress-link IDs per the
/// sampling rules of §3.1; [`NoTagging`] turns the fabric into a vanilla
/// network (the baseline of Figure 13).
///
/// `Send + Sync` because the sharded engine invokes the policy from
/// per-pod worker threads concurrently; policies are stateless rule sets,
/// so this is a formality.
pub trait TagPolicy: Send + Sync {
    /// Applies tagging actions for a packet forwarded by `sw` from
    /// `in_port` (`None` = received from an attached host) to `out_port`.
    fn on_forward(
        &self,
        sw: SwitchId,
        in_port: Option<PortNo>,
        out_port: PortNo,
        headers: &mut TagHeaders,
    );
}

/// A tag policy that does nothing (vanilla switches).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTagging;

impl TagPolicy for NoTagging {
    fn on_forward(
        &self,
        _sw: SwitchId,
        _in_port: Option<PortNo>,
        _out_port: PortNo,
        _headers: &mut TagHeaders,
    ) {
    }
}

/// Actions a host handler may request; applied by the simulator after the
/// handler returns (command pattern, keeps borrows simple).
#[derive(Debug)]
pub(crate) enum HostAction {
    /// Transmit a packet from this host's NIC.
    Send(Packet),
    /// Fire `on_timer(host, token)` after `delay`.
    Timer { delay: Nanos, token: u64 },
}

/// Capabilities handed to host-side handlers ([`World::on_packet`],
/// [`World::on_timer`]).
pub struct HostApi<'a> {
    pub(crate) now: Nanos,
    pub(crate) host: HostId,
    pub(crate) actions: &'a mut Vec<HostAction>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) next_uid: &'a mut u64,
}

impl HostApi<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The host this callback concerns.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Allocates a unique packet ID.
    pub fn alloc_uid(&mut self) -> u64 {
        *self.next_uid += 1;
        *self.next_uid
    }

    /// Queues a packet for transmission on this host's NIC.
    pub fn send(&mut self, pkt: Packet) {
        self.actions.push(HostAction::Send(pkt));
    }

    /// Schedules `on_timer(host, token)` after `delay`.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.actions.push(HostAction::Timer { delay, token });
    }

    /// The simulation RNG (deterministic under the configured seed).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

/// A packet punted to the controller by the switch slow path (≥3 tags:
/// "instant trap of suspiciously long path", §3.1).
#[derive(Clone, Debug)]
pub struct Punt {
    /// The switch that punted.
    pub sw: SwitchId,
    /// Its ingress port for the packet (`None` = injected).
    pub in_port: Option<PortNo>,
    /// The packet, tags intact.
    pub pkt: Packet,
    /// When the switch punted it (controller sees it `punt_latency` later).
    pub punted_at: Nanos,
}

/// Actions the controller punt handler may request.
#[derive(Debug)]
pub(crate) enum CtrlAction {
    /// Re-inject a packet into a switch (OpenFlow packet-out); forwarding
    /// resumes as if it had arrived on `in_port`.
    PacketOut {
        sw: SwitchId,
        in_port: Option<PortNo>,
        pkt: Packet,
    },
}

/// Capabilities handed to [`World::on_punt`].
pub struct CtrlApi<'a> {
    pub(crate) now: Nanos,
    pub(crate) actions: &'a mut Vec<CtrlAction>,
}

impl CtrlApi<'_> {
    /// Current simulated time (punt arrival at the controller).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Sends a packet back down into `sw` as if received on `in_port`.
    pub fn packet_out(&mut self, sw: SwitchId, in_port: Option<PortNo>, pkt: Packet) {
        self.actions
            .push(CtrlAction::PacketOut { sw, in_port, pkt });
    }
}

/// Everything living at the edge of the simulated network: the transport
/// engines on each host, the PathDump agents observing arriving packets,
/// and the controller's packet-in handler.
///
/// The simulator is generic over one `World` so harnesses keep typed access
/// to their own state after the run.
pub trait World {
    /// A packet reached `api.host()`'s NIC (the OVS receive path).
    fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet);

    /// A timer set through [`HostApi::set_timer`] fired.
    fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64);

    /// A packet was punted to the controller (default: swallow it).
    fn on_punt(&mut self, api: &mut CtrlApi<'_>, punt: Punt) {
        let _ = (api, punt);
    }
}

/// A world that discards everything — useful for pure dataplane tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SinkWorld;

impl World for SinkWorld {
    fn on_packet(&mut self, _api: &mut HostApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
}
