//! Discrete-event, packet-level datacenter network simulator.
//!
//! This crate is the substrate substituting for the paper's physical
//! testbed (28 servers, commodity OpenFlow switches): switches forward with
//! static match-action semantics over the up–down routes of a structured
//! topology, apply a pluggable trajectory-tagging policy (CherryPick), obey
//! the two-VLAN-tag ASIC parsing limit by punting ≥3-tag packets to the
//! controller, and expose the fault models every PathDump experiment
//! injects: link failures, silent random drops (invisible to counters),
//! blackholes, queue tail drops, and forwarding misconfigurations.
//!
//! Determinism: per-shard event queues ordered by `(time, causal key)`
//! plus partitioned seeded RNG streams make every run exactly reproducible
//! — on either engine. The simulation can run on one global event loop
//! ([`config::EngineKind::Sequential`]) or sharded per fat-tree pod as a
//! conservative parallel DES ([`config::EngineKind::Sharded`]); both
//! produce bit-identical results (see `sim` module docs and
//! `tests/prop_shard_equivalence.rs`).

pub mod config;
pub mod event;
pub mod fault;
pub mod packet;
mod shard;
pub mod sim;
pub mod stats;
pub mod traits;

pub use config::{EngineKind, LinkConfig, SimConfig};
pub use fault::{FaultState, LoadBalance, Quirk, SwitchQuirks};
pub use packet::{Packet, TagHeaders, TcpFlags, HEADER_BYTES, VLAN_TAG_BYTES};
pub use sim::Simulator;
pub use stats::{DropReason, DropRecord, LinkCounters, SimStats, SwitchCounters};
pub use traits::{CtrlApi, HostApi, NoTagging, Punt, SinkWorld, TagPolicy, World};
