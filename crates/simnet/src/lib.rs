//! Discrete-event, packet-level datacenter network simulator.
//!
//! This crate is the substrate substituting for the paper's physical
//! testbed (28 servers, commodity OpenFlow switches): switches forward with
//! static match-action semantics over the up–down routes of a structured
//! topology, apply a pluggable trajectory-tagging policy (CherryPick), obey
//! the two-VLAN-tag ASIC parsing limit by punting ≥3-tag packets to the
//! controller, and expose the fault models every PathDump experiment
//! injects: link failures, silent random drops (invisible to counters),
//! blackholes, queue tail drops, and forwarding misconfigurations.
//!
//! Determinism: per-shard event queues ordered by `(time, causal key)`
//! plus partitioned seeded RNG streams make every run exactly reproducible
//! — on every engine. The simulation can run on one global event loop
//! ([`config::EngineKind::Sequential`]) or sharded per fat-tree pod as a
//! conservative parallel DES ([`config::EngineKind::Sharded`]); all modes
//! produce bit-identical results (see `sim` module docs and
//! `tests/prop_shard_equivalence.rs`).
//!
//! # Engine selection matrix
//!
//! | `engine` | `shard_workers` | Execution | Use when |
//! |---|---|---|---|
//! | `Sequential` | (ignored) | Global `(time, key)` scan via a tournament tree, single thread | Reference semantics; smallest constant factor for tiny fabrics |
//! | `Sharded` | `0` | [`WorkerMode::Inline`]: windowed rounds, all shards on the calling thread | Single-core boxes and fine-grained stepping harnesses — faster than sequential at k ≥ 8 (smaller per-shard heaps), zero threads |
//! | `Sharded` | `n ≥ 1` | [`WorkerMode::Pool`]: a **persistent pool** of `min(n, switch shards)` workers plus the calling thread on the edge shard | Multicore parallel headroom; threads spawn once and park between `run_until` calls |
//!
//! `Sharded` falls back to the sequential driver when the topology has
//! fewer than two switch shards or any cross-shard channel has zero
//! lookahead ([`sim::Simulator::effective_engine`]).
//!
//! Whatever the mode, every sharded run executes the **one** windowed-round
//! driver (`driver::drive_windowed_rounds`): integrate mailboxes → publish
//! earliest pending times → freeze the round snapshot → process strictly
//! below per-shard horizons (derived events routed directly to local
//! shards, batched per destination otherwise) → flush and end the round.
//! The executor trait is the only thing that differs between inline and
//! pooled execution, so the barrier discipline cannot drift between them.

pub mod config;
mod driver;
pub mod event;
pub mod fault;
pub mod packet;
mod pool;
mod shard;
pub mod sim;
pub mod stats;
pub mod traits;

pub use config::{EngineKind, LinkConfig, SimConfig, WorkerMode};
pub use fault::{FaultState, LoadBalance, Misconfig, Quirk, SwitchQuirks};
pub use packet::{Packet, TagHeaders, TcpFlags, HEADER_BYTES, VLAN_TAG_BYTES};
pub use pool::PoolStats;
pub use sim::Simulator;
pub use stats::{DropReason, DropRecord, LinkCounters, SimStats, SwitchCounters};
pub use traits::{CtrlApi, HostApi, NoTagging, Punt, SinkWorld, TagPolicy, World};
