//! Simulation counters: the operator-visible ones (what a real switch
//! exports) and the hidden ground-truth ones (what actually happened).
//!
//! The distinction matters for the silent-drop experiments: a faulty
//! interface "drops packets at random without updating the discarded packet
//! counters" (§2.3), so `silent_drops`/`blackhole_drops` exist only for
//! verification and are never consulted by PathDump components.

use pathdump_topology::{FlowId, Nanos, PortNo, SwitchId};
use serde::{Deserialize, Serialize};

/// Counters for one egress (switch port or host NIC).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Bytes transmitted (wire size).
    pub tx_bytes: u64,
    /// Tail drops due to a full egress queue (operator-visible).
    pub queue_drops: u64,
    /// Drops because the link was down at transmit time (operator-visible).
    pub down_drops: u64,
    /// Hidden: silent random drops by a faulty interface.
    pub silent_drops: u64,
    /// Hidden: blackholed packets.
    pub blackhole_drops: u64,
}

impl LinkCounters {
    /// All drops visible to an operator polling switch counters.
    pub fn visible_drops(&self) -> u64 {
        self.queue_drops + self.down_drops
    }

    /// All drops that actually occurred (ground truth).
    pub fn actual_drops(&self) -> u64 {
        self.visible_drops() + self.silent_drops + self.blackhole_drops
    }
}

/// Per-switch counters not tied to one port.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCounters {
    /// Packets received (all ports).
    pub rx_pkts: u64,
    /// Packets punted to the controller (≥3 tags).
    pub punts: u64,
    /// TTL-expired drops.
    pub ttl_drops: u64,
    /// Packets dropped because no route/egress existed.
    pub no_route_drops: u64,
}

/// Why a packet was dropped (drop-log entries).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DropReason {
    /// Egress queue overflow (tail drop).
    QueueFull,
    /// Egress link down.
    LinkDown,
    /// TTL reached zero.
    TtlExpired,
    /// Silent random drop at a faulty interface.
    SilentRandom,
    /// Blackholed link.
    Blackhole,
    /// No usable egress.
    NoRoute,
}

/// One entry of the (optional) drop log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DropRecord {
    /// When the drop happened.
    pub time: Nanos,
    /// Switch where it happened; `None` = host NIC.
    pub sw: Option<SwitchId>,
    /// Egress port involved, when applicable.
    pub port: Option<PortNo>,
    /// Why.
    pub reason: DropReason,
    /// The victim flow.
    pub flow: FlowId,
    /// The victim packet UID.
    pub uid: u64,
}

/// Bound on the drop log so pathological runs cannot exhaust memory.
pub const DROP_LOG_CAP: usize = 100_000;

/// All simulation statistics.
///
/// `PartialEq` so the differential harness can assert whole-run equality
/// between the sequential and sharded engines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// `ports[sw][port]` egress counters.
    pub switch_ports: Vec<Vec<LinkCounters>>,
    /// Per-switch counters.
    pub switches: Vec<SwitchCounters>,
    /// Host NIC egress counters.
    pub host_nics: Vec<LinkCounters>,
    /// Packets delivered to host worlds.
    pub delivered_pkts: u64,
    /// Wire bytes delivered to host worlds.
    pub delivered_bytes: u64,
    /// Packets injected by host worlds.
    pub injected_pkts: u64,
    /// Events processed by the main loop.
    pub events: u64,
    /// Individual drop events (only when `collect_drop_log` is set).
    pub drop_log: Vec<DropRecord>,
}

impl SimStats {
    pub(crate) fn new(num_switches: usize, ports_per_switch: &[usize], num_hosts: usize) -> Self {
        SimStats {
            switch_ports: ports_per_switch
                .iter()
                .map(|&n| vec![LinkCounters::default(); n])
                .collect(),
            switches: vec![SwitchCounters::default(); num_switches],
            host_nics: vec![LinkCounters::default(); num_hosts],
            ..SimStats::default()
        }
    }

    /// Egress counters of a switch port.
    pub fn port(&self, sw: SwitchId, port: PortNo) -> &LinkCounters {
        &self.switch_ports[sw.index()][port.index()]
    }

    /// Sum of actual (ground-truth) drops across the whole fabric.
    pub fn total_actual_drops(&self) -> u64 {
        let fabric: u64 = self
            .switch_ports
            .iter()
            .flatten()
            .map(|c| c.actual_drops())
            .sum();
        let nics: u64 = self.host_nics.iter().map(|c| c.actual_drops()).sum();
        let misc: u64 = self
            .switches
            .iter()
            .map(|c| c.ttl_drops + c.no_route_drops)
            .sum();
        fabric + nics + misc
    }

    /// Total controller punts.
    pub fn total_punts(&self) -> u64 {
        self.switches.iter().map(|c| c.punts).sum()
    }

    #[allow(dead_code)] // engine drops go through the staged merge; kept for tests/API symmetry
    pub(crate) fn log_drop(&mut self, enabled: bool, rec: DropRecord) {
        if enabled && self.drop_log.len() < DROP_LOG_CAP {
            self.drop_log.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_split() {
        let c = LinkCounters {
            tx_pkts: 10,
            tx_bytes: 1000,
            queue_drops: 2,
            down_drops: 1,
            silent_drops: 5,
            blackhole_drops: 7,
        };
        assert_eq!(c.visible_drops(), 3);
        assert_eq!(c.actual_drops(), 15);
    }

    #[test]
    fn stats_shape() {
        let s = SimStats::new(2, &[4, 8], 3);
        assert_eq!(s.switch_ports[0].len(), 4);
        assert_eq!(s.switch_ports[1].len(), 8);
        assert_eq!(s.host_nics.len(), 3);
        assert_eq!(s.total_actual_drops(), 0);
        assert_eq!(s.total_punts(), 0);
    }

    #[test]
    fn drop_log_caps() {
        let mut s = SimStats::new(1, &[1], 1);
        let rec = DropRecord {
            time: Nanos::ZERO,
            sw: None,
            port: None,
            reason: DropReason::QueueFull,
            flow: FlowId::tcp(
                pathdump_topology::Ip::new(1, 1, 1, 1),
                1,
                pathdump_topology::Ip::new(2, 2, 2, 2),
                2,
            ),
            uid: 0,
        };
        for _ in 0..DROP_LOG_CAP + 10 {
            s.log_drop(true, rec.clone());
        }
        assert_eq!(s.drop_log.len(), DROP_LOG_CAP);
        let mut s2 = SimStats::new(1, &[1], 1);
        s2.log_drop(false, rec);
        assert!(s2.drop_log.is_empty());
    }
}
