//! The execution drivers: one generic **windowed-round driver** shared by
//! every sharded mode, and the tournament-indexed **sequential** reference.
//!
//! # The windowed-round contract
//!
//! Before this module existed, the inline driver, the spawned-worker loop,
//! and the edge loop were three hand-written copies of the same round
//! shape that had to stay barrier-for-barrier identical by inspection.
//! [`drive_windowed_rounds`] is now the single implementation; the modes
//! differ only in the [`RoundSync`] executor plugged into it:
//!
//! 1. **Integrate & publish** — for each local lane (shard), drain
//!    cross-round messages into its queue ([`RoundSync::integrate`]) and
//!    publish its earliest pending event time ([`RoundSync::publish`]).
//! 2. **Freeze** — [`RoundSync::freeze`] produces the frozen global
//!    `t_next` snapshot (a two-phase barrier under the threaded executor);
//!    if the global minimum exceeds the run horizon, the drive ends.
//! 3. **Process** — each local lane pops and dispatches events strictly
//!    below its horizon (`ShardPlan::horizon` over the frozen snapshot).
//!    Derived events routed to *local* lanes are pushed directly — they
//!    land at or beyond the destination's horizon by the lookahead
//!    argument, so they cannot be processed until the next round — and
//!    events for remote shards are buffered per destination
//!    ([`RoundSync::post`]).
//! 4. **Exchange** — [`RoundSync::round_end`] flushes the per-destination
//!    buffers (one lock + one splice per shard per window, not one lock
//!    per message) and waits the end-of-round barrier, making every
//!    message visible before the next round's integrate.
//!
//! [`InlineSync`] (all lanes on the calling thread) makes steps 2 and 4
//! trivial; [`ExchangeSync`] implements them over the shared
//! [`Exchange`]. Any conservative schedule yields bit-identical results
//! (see `sim.rs` module docs), so the executor choice is invisible.
//!
//! # The sequential driver
//!
//! [`seq_drive`] pops the globally earliest `(time, key)` event across all
//! lanes. The per-pop linear scan over shard queues is replaced by a
//! [`TournamentTree`] (a winner tree over the per-lane queue heads):
//! re-seating a lane after a pop or a cross-lane push costs `O(log L)`
//! comparisons instead of `O(L)` peeks per event.

use crate::config::SimConfig;
use crate::event::{EventEntry, EventQueue};
use crate::shard::{AbortGuard, Exchange, Outgoing, ShardPlan};
use crate::traits::TagPolicy;
use pathdump_topology::{Nanos, RouteTables, Topology};

/// Read-only state shared by every shard and every driver.
pub(crate) struct Net<'a> {
    pub cfg: &'a SimConfig,
    pub topo: &'a Topology,
    pub routes: &'a RouteTables,
    pub plan: &'a ShardPlan,
    pub tag: &'a dyn TagPolicy,
}

/// One schedulable shard: an event queue plus the dispatch half that
/// mutates the shard's state. Implemented by the switch-shard and edge
/// contexts in `sim.rs`; the drivers only see this surface.
pub(crate) trait LaneCtx {
    /// The shard this lane drives.
    fn shard(&self) -> usize;
    /// The lane's event queue.
    fn queue_mut(&mut self) -> &mut EventQueue;
    /// Dispatches one event, appending derived cross-shard events to `out`.
    fn dispatch_event(&mut self, net: &Net, ev: EventEntry, out: &mut Vec<Outgoing>);
}

/// The synchronization half of the windowed-round driver (see module
/// docs for the four-step contract).
pub(crate) trait RoundSync {
    /// Drains messages that arrived for `shard` since the last round.
    fn integrate(&mut self, shard: usize, queue: &mut EventQueue);
    /// Publishes `shard`'s earliest pending event time for this round.
    fn publish(&mut self, shard: usize, t: u64);
    /// Freezes the global `t_next` snapshot (threaded: barrier first).
    fn freeze(&mut self, snap: &mut Vec<u64>);
    /// Buffers one event for a shard no local lane drives.
    fn post(&mut self, m: Outgoing);
    /// Flushes buffered events and ends the round (threaded: barrier).
    fn round_end(&mut self);
}

/// Executor for the single-thread sharded mode: every lane is local, so
/// there is nothing to exchange and no barrier to wait.
pub(crate) struct InlineSync {
    t_next: Vec<u64>,
}

impl InlineSync {
    pub fn new(total_shards: usize) -> Self {
        InlineSync {
            t_next: vec![u64::MAX; total_shards],
        }
    }
}

impl RoundSync for InlineSync {
    fn integrate(&mut self, _shard: usize, _queue: &mut EventQueue) {}

    fn publish(&mut self, shard: usize, t: u64) {
        self.t_next[shard] = t;
    }

    fn freeze(&mut self, snap: &mut Vec<u64>) {
        snap.clear();
        snap.extend_from_slice(&self.t_next);
    }

    fn post(&mut self, _m: Outgoing) {
        unreachable!("the inline driver holds every lane locally");
    }

    fn round_end(&mut self) {}
}

/// Executor for one participant of the threaded mode (a pool worker's
/// shard group, or the calling thread's edge shard): mailbox integrate,
/// barrier-frozen snapshots, and **per-destination batched** posting —
/// one inbox lock and one splice per shard per window.
pub(crate) struct ExchangeSync<'a> {
    exch: &'a Exchange,
    /// Outgoing events buffered per destination shard within one round.
    pending: Vec<Vec<Outgoing>>,
    /// Reusable drain buffer; rotates capacity with the inboxes.
    scratch: Vec<Outgoing>,
    /// Aborts the barrier if this participant unwinds mid-round.
    _abort: AbortGuard<'a>,
}

impl<'a> ExchangeSync<'a> {
    pub fn new(exch: &'a Exchange) -> Self {
        ExchangeSync {
            pending: (0..exch.inboxes.len()).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
            _abort: AbortGuard(exch),
            exch,
        }
    }
}

impl RoundSync for ExchangeSync<'_> {
    fn integrate(&mut self, shard: usize, queue: &mut EventQueue) {
        {
            let mut inbox = self.exch.inboxes[shard].lock().expect("inbox poisoned");
            std::mem::swap(&mut *inbox, &mut self.scratch);
        }
        for m in self.scratch.drain(..) {
            queue.push_keyed(m.at, m.key, m.kind);
        }
    }

    fn publish(&mut self, shard: usize, t: u64) {
        self.exch.publish(shard, t);
    }

    fn freeze(&mut self, snap: &mut Vec<u64>) {
        self.exch.barrier.wait();
        self.exch.snapshot(snap);
    }

    fn post(&mut self, m: Outgoing) {
        self.pending[m.shard].push(m);
    }

    fn round_end(&mut self) {
        for (shard, msgs) in self.pending.iter_mut().enumerate() {
            self.exch.post_batch(shard, msgs);
        }
        self.exch.barrier.wait();
    }
}

/// Builds the shard → local-lane-index map used to route derived events.
fn lane_index(total_shards: usize, lanes: &[&mut dyn LaneCtx]) -> Vec<usize> {
    let mut lane_of = vec![usize::MAX; total_shards];
    for (i, l) in lanes.iter().enumerate() {
        lane_of[l.shard()] = i;
    }
    lane_of
}

/// Routes the events produced by one dispatch: local lanes are pushed
/// directly (sound — see module docs), the rest buffered in the executor.
fn route_out(
    out: &mut Vec<Outgoing>,
    lanes: &mut [&mut dyn LaneCtx],
    lane_of: &[usize],
    sync: &mut impl RoundSync,
) {
    for m in out.drain(..) {
        let li = lane_of[m.shard];
        if li != usize::MAX {
            lanes[li].queue_mut().push_keyed(m.at, m.key, m.kind);
        } else {
            sync.post(m);
        }
    }
}

/// The one windowed-round driver (see module docs for the contract all
/// sharded modes share). `lanes` is whatever subset of shards this
/// participant drives; `sync` supplies integration, snapshots, and
/// cross-participant exchange.
pub(crate) fn drive_windowed_rounds(
    net: &Net,
    lanes: &mut [&mut dyn LaneCtx],
    sync: &mut impl RoundSync,
    t: Nanos,
) {
    let total = net.plan.total_shards();
    let lane_of = lane_index(total, lanes);
    let mut snap: Vec<u64> = Vec::with_capacity(total);
    let mut out: Vec<Outgoing> = Vec::new();
    loop {
        for l in lanes.iter_mut() {
            let s = l.shard();
            sync.integrate(s, l.queue_mut());
            let t_next = l.queue_mut().peek_time().map_or(u64::MAX, |n| n.0);
            sync.publish(s, t_next);
        }
        sync.freeze(&mut snap);
        let gmin = snap.iter().copied().min().unwrap_or(u64::MAX);
        if gmin == u64::MAX || gmin > t.0 {
            break;
        }
        for i in 0..lanes.len() {
            let h = net.plan.horizon(lanes[i].shard(), &snap);
            while let Some((at, _)) = lanes[i].queue_mut().peek_time_key() {
                if at.0 >= h || at > t {
                    break;
                }
                let ev = lanes[i].queue_mut().pop().expect("peeked event must pop");
                lanes[i].dispatch_event(net, ev, &mut out);
                route_out(&mut out, lanes, &lane_of, sync);
            }
        }
        sync.round_end();
    }
}

/// The sequential reference engine: pops the globally earliest
/// `(time, key)` event across all lanes, ordered by a [`TournamentTree`]
/// over the per-lane queue heads.
///
/// Events stamped exactly `Nanos::MAX` are the saturated "never" sentinel
/// and do not fire (the windowed drivers cannot distinguish them from
/// empty queues, so neither engine runs them).
pub(crate) fn seq_drive(net: &Net, lanes: &mut [&mut dyn LaneCtx], t: Nanos) {
    let lane_of = lane_index(net.plan.total_shards(), lanes);
    let mut tree = TournamentTree::new(lanes.len());
    for (i, l) in lanes.iter_mut().enumerate() {
        tree.set(i, l.queue_mut().peek_time_key());
    }
    let mut out: Vec<Outgoing> = Vec::new();
    while let Some((i, (at, _))) = tree.min() {
        if at > t || at == Nanos::MAX {
            break;
        }
        let ev = lanes[i].queue_mut().pop().expect("tree head must pop");
        lanes[i].dispatch_event(net, ev, &mut out);
        for m in out.drain(..) {
            let li = lane_of[m.shard];
            lanes[li].queue_mut().push_keyed(m.at, m.key, m.kind);
            if li != i {
                tree.set(li, lanes[li].queue_mut().peek_time_key());
            }
        }
        // The popped lane re-seats last: it covers both the pop and any
        // same-lane events the dispatch pushed.
        tree.set(i, lanes[i].queue_mut().peek_time_key());
    }
}

/// A winner (tournament) tree over per-lane `(time, key)` queue heads:
/// `min()` is O(1), re-seating a lane after its head changes is
/// O(log lanes). Ties — impossible between real events short of a 64-bit
/// causal-key collision — break on the lane index, matching the
/// first-wins linear scan this structure replaced.
pub(crate) struct TournamentTree {
    /// Leaf count rounded up to a power of two.
    width: usize,
    /// Winning lane per node, 1-based heap layout (leaves at `width + i`).
    node: Vec<u32>,
    /// Current head per lane; the extra last slot is the permanent
    /// "empty leaf" sentinel.
    heads: Vec<Option<(Nanos, u64)>>,
}

impl TournamentTree {
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "tournament over zero lanes");
        let width = lanes.next_power_of_two();
        let sentinel = lanes as u32;
        let mut node = vec![sentinel; 2 * width];
        for i in 0..lanes {
            node[width + i] = i as u32;
        }
        let mut tree = TournamentTree {
            width,
            node,
            heads: vec![None; lanes + 1],
        };
        for x in (1..width).rev() {
            tree.node[x] = tree.winner(tree.node[2 * x], tree.node[2 * x + 1]);
        }
        tree
    }

    /// Total order on lanes by current head: real heads first (by time,
    /// then key), empty lanes last, lane index breaking exact ties.
    fn rank(&self, lane: u32) -> (bool, Nanos, u64, u32) {
        match self.heads[lane as usize] {
            Some((at, key)) => (false, at, key, lane),
            None => (true, Nanos(u64::MAX), u64::MAX, lane),
        }
    }

    fn winner(&self, a: u32, b: u32) -> u32 {
        if self.rank(a) <= self.rank(b) {
            a
        } else {
            b
        }
    }

    /// Re-seats `lane` after its queue head changed.
    pub fn set(&mut self, lane: usize, head: Option<(Nanos, u64)>) {
        self.heads[lane] = head;
        let mut x = (self.width + lane) / 2;
        while x >= 1 {
            self.node[x] = self.winner(self.node[2 * x], self.node[2 * x + 1]);
            if x == 1 {
                break;
            }
            x /= 2;
        }
    }

    /// The lane holding the globally earliest `(time, key)` head, if any
    /// lane is non-empty.
    pub fn min(&self) -> Option<(usize, (Nanos, u64))> {
        let w = self.node[1] as usize;
        self.heads[w].map(|h| (w, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Differential check against a linear scan over random head churn.
    #[test]
    fn tournament_matches_linear_scan() {
        for lanes in [1usize, 2, 3, 5, 8, 11] {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ lanes as u64);
            let mut tree = TournamentTree::new(lanes);
            let mut heads: Vec<Option<(Nanos, u64)>> = vec![None; lanes];
            for step in 0..500 {
                let lane = rng.gen_range(0..lanes);
                let head = if rng.gen::<f64>() < 0.25 {
                    None
                } else {
                    Some((Nanos(rng.gen_range(0..50)), rng.gen::<u64>() % 16))
                };
                heads[lane] = head;
                tree.set(lane, head);
                let expect = heads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, h)| h.map(|(at, k)| (at, k, i)))
                    .min();
                let got = tree.min().map(|(i, (at, k))| (at, k, i));
                assert_eq!(got, expect, "lanes={lanes} step={step}");
            }
        }
    }

    #[test]
    fn tournament_tie_breaks_on_lane_index() {
        let mut tree = TournamentTree::new(4);
        tree.set(2, Some((Nanos(7), 9)));
        tree.set(1, Some((Nanos(7), 9)));
        assert_eq!(tree.min(), Some((1, (Nanos(7), 9))));
        tree.set(1, None);
        assert_eq!(tree.min(), Some((2, (Nanos(7), 9))));
        tree.set(2, None);
        assert_eq!(tree.min(), None);
    }

    /// A saturated `Nanos::MAX` head is a real (orderable) entry — the
    /// drivers, not the tree, decide it never fires.
    #[test]
    fn tournament_orders_saturated_heads_before_empty() {
        let mut tree = TournamentTree::new(2);
        tree.set(0, Some((Nanos::MAX, 3)));
        assert_eq!(tree.min(), Some((0, (Nanos::MAX, 3))));
    }
}
