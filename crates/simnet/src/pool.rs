//! A persistent worker pool for the sharded engine.
//!
//! The threaded driver used to spawn and join its shard workers inside
//! every `run_until` call (`std::thread::scope`), which taxes fine-grained
//! stepping harnesses — the differential proptests and any world that
//! advances the clock in small increments pay a thread create/destroy
//! cycle per step. The pool amortizes that: worker threads are spawned
//! once, park on a mailbox between runs, and receive one *job* (a closure
//! driving their shard group through the windowed rounds) per batch.
//!
//! # Scoped-job soundness
//!
//! Jobs borrow the simulator's per-run shard contexts, so they are not
//! `'static`. [`WorkerPool::dispatch`] erases the lifetime (an internal
//! `transmute`) and returns a [`BatchGuard`] that **always** blocks until
//! every job of the batch has finished — on the explicit
//! [`BatchGuard::finish`] path and, crucially, in its `Drop` when the
//! caller unwinds mid-batch. A job therefore never outlives the borrows it
//! captures, which is the same guarantee `std::thread::scope` provides,
//! minus the per-call spawn.
//!
//! Worker panics are caught at the job boundary (the thread survives for
//! the next batch) and re-raised on the dispatching thread by
//! [`BatchGuard::finish`]; the round barrier's abort protocol (see
//! [`crate::shard::RoundBarrier`]) has already unblocked the surviving
//! participants by then.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work dispatched to one pool worker.
pub(crate) type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// What a parked worker wakes up to.
enum Command {
    Run(Job<'static>),
    Shutdown,
}

/// One worker's parked-thread handoff slot.
#[derive(Default)]
struct Mailbox {
    slot: Mutex<Option<Command>>,
    cv: Condvar,
}

/// Completion state of the in-flight batch.
#[derive(Default)]
struct BatchState {
    remaining: usize,
    /// Panic payloads of jobs that unwound (re-raised by the dispatcher).
    panics: Vec<Box<dyn Any + Send>>,
}

#[derive(Default)]
struct Shared {
    batch: Mutex<BatchState>,
    done_cv: Condvar,
}

struct Worker {
    mailbox: Arc<Mailbox>,
    handle: Option<JoinHandle<()>>,
}

/// Pool lifecycle counters, exposed through
/// [`crate::sim::Simulator::pool_stats`] so tests can pin the reuse
/// contract (repeated `run_until` calls must not spawn threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (parked or running a job).
    pub threads: usize,
    /// Threads ever spawned — the pool *generation* counter. Flat across
    /// `run_until` calls that reuse the pool; grows only when the pool
    /// first fills or is asked for more workers than it has.
    pub spawned_total: u64,
    /// Job batches dispatched (one per pooled `run_until`).
    pub batches: u64,
}

/// The persistent pool. Default-constructed empty (no threads); workers
/// are spawned lazily on the first pooled run and parked between runs.
/// Dropping the pool delivers a shutdown command to every mailbox and
/// joins all threads.
#[derive(Default)]
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    shared: Arc<Shared>,
    spawned_total: u64,
    batches: u64,
}

fn worker_main(mailbox: Arc<Mailbox>, shared: Arc<Shared>) {
    loop {
        let cmd = {
            let mut slot = mailbox.slot.lock().expect("pool mailbox poisoned");
            loop {
                if let Some(c) = slot.take() {
                    break c;
                }
                slot = mailbox.cv.wait(slot).expect("pool mailbox poisoned");
            }
        };
        match cmd {
            Command::Shutdown => return,
            Command::Run(job) => {
                let result = catch_unwind(AssertUnwindSafe(job));
                let mut batch = shared.batch.lock().expect("pool batch poisoned");
                if let Err(p) = result {
                    batch.panics.push(p);
                }
                batch.remaining -= 1;
                if batch.remaining == 0 {
                    shared.done_cv.notify_all();
                }
            }
        }
    }
}

impl WorkerPool {
    /// Current lifecycle counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.workers.len(),
            spawned_total: self.spawned_total,
            batches: self.batches,
        }
    }

    /// Grows the pool to at least `n` workers (never shrinks — parked
    /// spares are cheap and a later run may want them back).
    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let mailbox = Arc::new(Mailbox::default());
            let mb = Arc::clone(&mailbox);
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("simnet-shard-{}", self.workers.len()))
                .spawn(move || worker_main(mb, shared))
                .expect("spawn shard worker");
            self.workers.push(Worker {
                mailbox,
                handle: Some(handle),
            });
            self.spawned_total += 1;
        }
    }

    /// Hands one job to each worker (spawning workers on first use) and
    /// returns the guard that synchronizes batch completion. The caller
    /// may run its own share of the work (the edge shard) between
    /// `dispatch` and [`BatchGuard::finish`].
    pub fn dispatch<'env>(&mut self, jobs: Vec<Job<'env>>) -> BatchGuard<'_> {
        self.ensure_workers(jobs.len());
        {
            let mut batch = self.shared.batch.lock().expect("pool batch poisoned");
            assert_eq!(batch.remaining, 0, "previous batch still in flight");
            batch.remaining = jobs.len();
            batch.panics.clear();
        }
        self.batches += 1;
        for (w, job) in self.workers.iter().zip(jobs) {
            // SAFETY: the returned BatchGuard blocks until every job of
            // this batch has completed — on finish() and on Drop during
            // unwinding — so nothing borrowed by `job` is dropped while a
            // worker can still touch it (the std::thread::scope guarantee).
            let job: Job<'static> = unsafe { std::mem::transmute(job) };
            let mut slot = w.mailbox.slot.lock().expect("pool mailbox poisoned");
            debug_assert!(slot.is_none(), "worker mailbox already full");
            *slot = Some(Command::Run(job));
            w.mailbox.cv.notify_one();
        }
        BatchGuard {
            shared: &self.shared,
            finished: false,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &self.workers {
            let mut slot = w.mailbox.slot.lock().expect("pool mailbox poisoned");
            debug_assert!(slot.is_none(), "shutdown with a job still queued");
            *slot = Some(Command::Shutdown);
            w.mailbox.cv.notify_one();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Synchronizes one dispatched batch; see [`WorkerPool::dispatch`].
pub(crate) struct BatchGuard<'p> {
    shared: &'p Shared,
    finished: bool,
}

impl BatchGuard<'_> {
    fn wait(&mut self) -> Vec<Box<dyn Any + Send>> {
        self.finished = true;
        let mut batch = self.shared.batch.lock().expect("pool batch poisoned");
        while batch.remaining > 0 {
            batch = self
                .shared
                .done_cv
                .wait(batch)
                .expect("pool batch poisoned");
        }
        std::mem::take(&mut batch.panics)
    }

    /// Blocks until every job of the batch has finished; re-raises the
    /// first worker panic on this thread.
    pub fn finish(mut self) {
        let panics = self.wait();
        if let Some(p) = panics.into_iter().next() {
            resume_unwind(p);
        }
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // The dispatcher is unwinding mid-batch (its own shard of the
            // round panicked, aborting the barrier): the workers observe
            // the abort and finish promptly — wait for them so the batch's
            // borrows stay valid, and swallow their payloads (one panic is
            // already in flight).
            let _ = self.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn reuses_threads_across_batches() {
        let mut pool = WorkerPool::default();
        assert_eq!(pool.stats(), PoolStats::default());
        let hits = AtomicUsize::new(0);
        for round in 1..=5u64 {
            let jobs: Vec<Job> = (0..3)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Job
                })
                .collect();
            pool.dispatch(jobs).finish();
            let st = pool.stats();
            assert_eq!(st.threads, 3);
            assert_eq!(st.spawned_total, 3, "round {round} must reuse threads");
            assert_eq!(st.batches, round);
        }
        assert_eq!(hits.load(Ordering::SeqCst), 15);
    }

    /// Jobs may borrow caller-scoped state: the guard's completion wait is
    /// what makes the internal lifetime erasure sound.
    #[test]
    fn jobs_borrow_scoped_state() {
        let mut pool = WorkerPool::default();
        let mut cells = vec![0u64; 4];
        {
            let jobs: Vec<Job> = cells
                .iter_mut()
                .enumerate()
                .map(|(i, c)| {
                    Box::new(move || {
                        *c = (i as u64 + 1) * 10;
                    }) as Job
                })
                .collect();
            pool.dispatch(jobs).finish();
        }
        assert_eq!(cells, vec![10, 20, 30, 40]);
    }

    #[test]
    fn propagates_job_panic_and_survives() {
        let mut pool = WorkerPool::default();
        let jobs: Vec<Job> = vec![
            Box::new(|| panic!("job died")) as Job,
            Box::new(|| {}) as Job,
        ];
        let guard = pool.dispatch(jobs);
        let err = catch_unwind(AssertUnwindSafe(move || guard.finish()));
        assert!(err.is_err(), "worker panic must re-raise on the dispatcher");
        // The pool is still usable: the panicking job did not kill its thread.
        let ok = AtomicUsize::new(0);
        let jobs: Vec<Job> = (0..2)
            .map(|_| {
                Box::new(|| {
                    ok.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        pool.dispatch(jobs).finish();
        assert_eq!(ok.load(Ordering::SeqCst), 2);
        assert_eq!(pool.stats().spawned_total, 2);
    }

    /// Dropping the pool must deliver shutdown and join every thread —
    /// observable as the worker-held Arcs being released.
    #[test]
    fn drop_joins_cleanly() {
        let mut pool = WorkerPool::default();
        pool.dispatch((0..2).map(|_| Box::new(|| {}) as Job).collect())
            .finish();
        let shared = Arc::clone(&pool.shared);
        // pool + 2 workers hold the shared state.
        assert_eq!(Arc::strong_count(&shared), 4);
        drop(pool);
        assert_eq!(
            Arc::strong_count(&shared),
            1,
            "joined workers must have released their pool references"
        );
        // An empty pool (never used) also drops without hanging.
        drop(WorkerPool::default());
    }
}
