//! The discrete-event queue: a binary min-heap keyed on (time, sequence),
//! where the monotone sequence number makes tie-breaking — and therefore the
//! whole simulation — deterministic.

use crate::packet::Packet;
use crate::traits::Punt;
use pathdump_topology::{HostId, Nanos, PortNo, SwitchId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A packet arrives at a switch (finished propagation).
    SwitchRx {
        sw: SwitchId,
        in_port: Option<PortNo>,
        pkt: Packet,
    },
    /// A switch egress finishes serializing its head-of-line packet.
    PortTx { sw: SwitchId, port: PortNo },
    /// A packet arrives at a host NIC.
    HostRx { host: HostId, pkt: Packet },
    /// A host NIC finishes serializing its head-of-line packet.
    HostTx { host: HostId },
    /// A host timer fires.
    Timer { host: HostId, token: u64 },
    /// The controller receives a punted packet.
    CtrlRx { punt: Punt },
}

/// Heap entry; ordered so the earliest (time, seq) pops first.
#[derive(Debug)]
pub(crate) struct EventEntry {
    pub at: Nanos,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for EventEntry {}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<EventEntry>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, kind: EventKind) {
        self.seq += 1;
        self.heap.push(EventEntry {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<EventEntry> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), EventKind::HostTx { host: HostId(3) });
        q.push(Nanos(10), EventKind::HostTx { host: HostId(1) });
        q.push(Nanos(20), EventKind::HostTx { host: HostId(2) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for host in 0..10u32 {
            q.push(Nanos(5), EventKind::HostTx { host: HostId(host) });
        }
        let hosts: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::HostTx { host } => host.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(42), EventKind::HostTx { host: HostId(0) });
        assert_eq!(q.peek_time(), Some(Nanos(42)));
        assert_eq!(q.len(), 1);
    }
}
