//! The discrete-event queue: a binary min-heap keyed on `(time, key)`.
//!
//! Historically the tie-break key was a per-queue monotone insertion
//! counter, which makes runs reproducible but ties the schedule to *which
//! queue* an event was pushed into and *when* — an ordering the sharded
//! engine cannot reproduce, because shards push concurrently. The engine
//! therefore assigns every event a **causal key**: root events (harness
//! injections) take keys from a facade-level counter, and every event
//! created while dispatching event `E` derives its key from `E`'s key plus
//! a per-dispatch birth index (see [`KeyGen`]). Causal keys are a pure
//! function of the simulation's causal history, so the sequential and
//! sharded engines — which dispatch the same events with the same handlers
//! — assign identical keys and sort ties identically, no matter how the
//! work is scheduled across shards.
//!
//! Key collisions between *distinct same-timestamp* events would make the
//! tie-break engine-dependent; keys are 64-bit SplitMix64 outputs, so for
//! the handful of events sharing one timestamp the collision probability
//! is ~2⁻⁶⁴ per pair — negligible even across millions of runs.

use crate::packet::Packet;
use crate::traits::Punt;
use pathdump_topology::{HostId, Nanos, PortNo, SwitchId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives causal keys for events created by one dispatch (or one facade
/// call): child `i` of the event keyed `parent` gets
/// `mix64(parent ^ mix64(i+1))`, identical in both engines because the
/// handler code — and therefore the birth order — is shared.
#[derive(Debug)]
pub(crate) struct KeyGen {
    parent: u64,
    births: u64,
}

impl KeyGen {
    /// A key generator rooted at the event (or facade operation) `parent`.
    pub fn new(parent: u64) -> Self {
        KeyGen { parent, births: 0 }
    }

    /// The next child key.
    pub fn next_key(&mut self) -> u64 {
        self.births += 1;
        mix64(self.parent ^ mix64(self.births))
    }

    /// The parent key this generator derives from.
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Consumes and returns the next birth index (drop-log merge keys
    /// share the counter with event keys, so staged records sort in
    /// creation order within a dispatch).
    pub fn next_birth(&mut self) -> u64 {
        self.births += 1;
        self.births
    }
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A packet arrives at a switch (finished propagation).
    SwitchRx {
        sw: SwitchId,
        in_port: Option<PortNo>,
        pkt: Packet,
    },
    /// A switch egress finishes serializing its head-of-line packet.
    PortTx { sw: SwitchId, port: PortNo },
    /// A packet arrives at a host NIC.
    HostRx { host: HostId, pkt: Packet },
    /// A host NIC finishes serializing its head-of-line packet.
    HostTx { host: HostId },
    /// A host timer fires.
    Timer { host: HostId, token: u64 },
    /// The controller receives a punted packet.
    CtrlRx { punt: Punt },
}

/// Heap entry; ordered so the earliest (time, key) pops first.
#[derive(Debug)]
pub(crate) struct EventEntry {
    pub at: Nanos,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for EventEntry {}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<EventEntry>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at absolute time `at` with an auto-assigned
    /// insertion-order key (legacy behavior; the engine uses
    /// [`EventQueue::push_keyed`] exclusively so ties sort the same way in
    /// both engines).
    #[allow(dead_code)] // exercised by tests; engine pushes keyed events
    pub fn push(&mut self, at: Nanos, kind: EventKind) {
        self.seq += 1;
        self.heap.push(EventEntry {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Schedules `kind` at `at` with an explicit causal key.
    pub fn push_keyed(&mut self, at: Nanos, key: u64, kind: EventKind) {
        self.heap.push(EventEntry { at, seq: key, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<EventEntry> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// `(time, key)` of the earliest pending event — the global-minimum
    /// scan of the sequential driver compares these across shards.
    pub fn peek_time_key(&self) -> Option<(Nanos, u64)> {
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), EventKind::HostTx { host: HostId(3) });
        q.push(Nanos(10), EventKind::HostTx { host: HostId(1) });
        q.push(Nanos(20), EventKind::HostTx { host: HostId(2) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for host in 0..10u32 {
            q.push(Nanos(5), EventKind::HostTx { host: HostId(host) });
        }
        let hosts: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::HostTx { host } => host.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(42), EventKind::HostTx { host: HostId(0) });
        assert_eq!(q.peek_time(), Some(Nanos(42)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn keyed_ties_break_by_key() {
        let mut q = EventQueue::new();
        q.push_keyed(Nanos(5), 9, EventKind::HostTx { host: HostId(9) });
        q.push_keyed(Nanos(5), 3, EventKind::HostTx { host: HostId(3) });
        q.push_keyed(Nanos(5), 7, EventKind::HostTx { host: HostId(7) });
        let hosts: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::HostTx { host } => host.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, vec![3, 7, 9]);
    }

    #[test]
    fn keygen_is_deterministic_and_spread() {
        let mut a = KeyGen::new(42);
        let mut b = KeyGen::new(42);
        let ka: Vec<u64> = (0..4).map(|_| a.next_key()).collect();
        let kb: Vec<u64> = (0..4).map(|_| b.next_key()).collect();
        assert_eq!(ka, kb, "same parent + birth order => same keys");
        let distinct: std::collections::HashSet<u64> = ka.iter().copied().collect();
        assert_eq!(distinct.len(), 4, "children must not collide");
        let mut c = KeyGen::new(43);
        assert_ne!(a.next_key(), c.next_key());
    }
}
