//! Simulated packets: 5-tuple, TCP-ish metadata, and the in-band trajectory
//! headers (VLAN tag stack + DSCP) that PathDump rides on.

use pathdump_topology::{FlowId, Nanos, SwitchId};

/// TCP header flags (only the bits the transport model uses).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// SYN bit.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// ACK bit.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// FIN bit.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// RST bit.
    pub const RST: TcpFlags = TcpFlags(0x04);

    /// Returns true if all bits of `other` are set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

/// The in-band trajectory headers a packet carries: up to a few stacked
/// 12-bit VLAN IDs plus the 6-bit DSCP field (§3.1).
///
/// The DSCP field is split exactly as the CherryPick rules use it: bit 0 is
/// the per-hop parity bit driving "sample one link every two hops", bits
/// 1..6 hold the pod-local first sample on VL2.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct TagHeaders {
    /// VLAN tag stack, in push order (last element = outermost tag).
    pub tags: Vec<u16>,
    /// DSCP field (6 bits meaningful).
    pub dscp: u8,
}

impl TagHeaders {
    /// Parity bit mask within DSCP.
    pub const PARITY_BIT: u8 = 0x01;
    /// The DSCP sub-field used for VL2's first link sample (bits 1..6).
    pub const DSCP_SAMPLE_SHIFT: u8 = 1;
    /// Mask of the 5-bit VL2 sample value after shifting.
    pub const DSCP_SAMPLE_MASK: u8 = 0x1F;

    /// Reads the hop parity bit.
    pub fn parity(&self) -> bool {
        self.dscp & Self::PARITY_BIT != 0
    }

    /// Toggles the hop parity bit, returning the *new* value.
    pub fn toggle_parity(&mut self) -> bool {
        self.dscp ^= Self::PARITY_BIT;
        self.parity()
    }

    /// Reads the VL2 DSCP sample: `None` when unused (all-zero sentinel).
    pub fn dscp_sample(&self) -> Option<u8> {
        let v = (self.dscp >> Self::DSCP_SAMPLE_SHIFT) & Self::DSCP_SAMPLE_MASK;
        if v == 0 {
            None
        } else {
            Some(v - 1)
        }
    }

    /// Stores a VL2 DSCP sample (values `0..31`).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in the 5-bit field.
    pub fn set_dscp_sample(&mut self, value: u8) {
        assert!(value < Self::DSCP_SAMPLE_MASK, "DSCP sample out of range");
        self.dscp = (self.dscp & Self::PARITY_BIT) | ((value + 1) << Self::DSCP_SAMPLE_SHIFT);
    }

    /// Pushes a 12-bit VLAN tag.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds 12 bits.
    pub fn push_tag(&mut self, id: u16) {
        assert!(id < 4096, "VLAN IDs are 12-bit");
        self.tags.push(id);
    }

    /// Number of stacked VLAN tags.
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// Clears all trajectory state (what the edge OVS does before handing
    /// the packet to the upper stack, and what the controller does before
    /// re-injecting a trapped packet).
    pub fn strip(&mut self) -> Vec<u16> {
        self.dscp = 0;
        std::mem::take(&mut self.tags)
    }
}

/// A simulated packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique packet ID (simulation-wide, for tracing/debug).
    pub uid: u64,
    /// The 5-tuple.
    pub flow: FlowId,
    /// L4 payload bytes carried.
    pub payload: u32,
    /// TCP sequence number (first payload byte).
    pub seq: u64,
    /// TCP cumulative acknowledgment number.
    pub ack: u64,
    /// TCP flags.
    pub flags: TcpFlags,
    /// In-band trajectory headers.
    pub headers: TagHeaders,
    /// IP time-to-live (backstop against infinite loops).
    pub ttl: u8,
    /// Simulation-only metadata: total flow size in bytes, used by the
    /// Figure 5 "poor hash" switch quirk that splits traffic by flow size
    /// (the paper configures its testbed switch the same way).
    pub flow_size_hint: u64,
    /// When the packet left the sender.
    pub sent_at: Nanos,
    /// Ground-truth trajectory (switches traversed), recorded by the
    /// simulator for verification only — no PathDump component reads this.
    pub gt_path: Vec<SwitchId>,
}

/// Ethernet + IPv4 + TCP framing bytes added to the payload.
pub const HEADER_BYTES: u32 = 14 + 20 + 20;
/// Bytes added per stacked VLAN tag.
pub const VLAN_TAG_BYTES: u32 = 4;

impl Packet {
    /// Builds a data packet with default headers.
    pub fn data(uid: u64, flow: FlowId, seq: u64, payload: u32, now: Nanos) -> Self {
        Packet {
            uid,
            flow,
            payload,
            seq,
            ack: 0,
            flags: TcpFlags::default(),
            headers: TagHeaders::default(),
            ttl: 64,
            flow_size_hint: 0,
            sent_at: now,
            gt_path: Vec::new(),
        }
    }

    /// Builds a pure ACK for `flow` (an ACK of the reverse data stream).
    pub fn ack(uid: u64, flow: FlowId, ack: u64, now: Nanos) -> Self {
        Packet {
            uid,
            flow,
            payload: 0,
            seq: 0,
            ack,
            flags: TcpFlags::ACK,
            headers: TagHeaders::default(),
            ttl: 64,
            flow_size_hint: 0,
            sent_at: now,
            gt_path: Vec::new(),
        }
    }

    /// Bytes the packet occupies on the wire, including framing and
    /// currently stacked tags.
    pub fn wire_size(&self) -> u32 {
        self.payload + HEADER_BYTES + VLAN_TAG_BYTES * self.headers.tags.len() as u32
    }

    /// Returns true for pure-ACK packets (no payload).
    pub fn is_pure_ack(&self) -> bool {
        self.payload == 0 && self.flags.contains(TcpFlags::ACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::Ip;

    fn flow() -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), 40000, Ip::new(10, 1, 0, 2), 80)
    }

    #[test]
    fn flags_ops() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
    }

    #[test]
    fn parity_toggles() {
        let mut h = TagHeaders::default();
        assert!(!h.parity());
        assert!(h.toggle_parity());
        assert!(!h.toggle_parity());
    }

    #[test]
    fn dscp_sample_roundtrip() {
        let mut h = TagHeaders::default();
        assert_eq!(h.dscp_sample(), None);
        h.set_dscp_sample(0);
        assert_eq!(h.dscp_sample(), Some(0));
        h.set_dscp_sample(30);
        assert_eq!(h.dscp_sample(), Some(30));
        // Parity survives sample writes.
        h.toggle_parity();
        h.set_dscp_sample(7);
        assert!(h.parity());
        assert_eq!(h.dscp_sample(), Some(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dscp_sample_range_checked() {
        TagHeaders::default().set_dscp_sample(31);
    }

    #[test]
    fn tag_stack() {
        let mut h = TagHeaders::default();
        h.push_tag(100);
        h.push_tag(4095);
        assert_eq!(h.tag_count(), 2);
        let stripped = h.strip();
        assert_eq!(stripped, vec![100, 4095]);
        assert_eq!(h.tag_count(), 0);
        assert_eq!(h.dscp, 0);
    }

    #[test]
    #[should_panic(expected = "12-bit")]
    fn oversized_tag_rejected() {
        TagHeaders::default().push_tag(4096);
    }

    #[test]
    fn wire_size_includes_tags() {
        let mut p = Packet::data(1, flow(), 0, 1460, Nanos::ZERO);
        assert_eq!(p.wire_size(), 1460 + 54);
        p.headers.push_tag(1);
        p.headers.push_tag(2);
        assert_eq!(p.wire_size(), 1460 + 54 + 8);
    }

    #[test]
    fn ack_is_pure() {
        let a = Packet::ack(2, flow().reversed(), 1460, Nanos::ZERO);
        assert!(a.is_pure_ack());
        let d = Packet::data(3, flow(), 0, 1, Nanos::ZERO);
        assert!(!d.is_pure_ack());
    }
}
